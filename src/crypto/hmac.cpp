#include "crypto/hmac.h"

#include <cstring>

namespace omadrm::crypto {

HmacSha1::HmacSha1(ByteView key) {
  Bytes k(key.begin(), key.end());
  if (k.size() > Sha1::kBlockSize) {
    k = Sha1::hash(k);
  }
  k.resize(Sha1::kBlockSize, 0);
  for (std::size_t i = 0; i < Sha1::kBlockSize; ++i) {
    ipad_key_[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad_key_[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  reset();
}

void HmacSha1::reset() {
  inner_.reset();
  inner_.update(ByteView(ipad_key_.data(), ipad_key_.size()));
}

void HmacSha1::update(ByteView data) { inner_.update(data); }

Bytes HmacSha1::finish() {
  Bytes inner_digest = inner_.finish();
  Sha1 outer;
  outer.update(ByteView(opad_key_.data(), opad_key_.size()));
  outer.update(inner_digest);
  return outer.finish();
}

Bytes HmacSha1::mac(ByteView key, ByteView data) {
  HmacSha1 h(key);
  h.update(data);
  return h.finish();
}

bool HmacSha1::verify(ByteView key, ByteView data, ByteView expected_tag) {
  Bytes tag = mac(key, data);
  return ct_equal(tag, expected_tag);
}

}  // namespace omadrm::crypto
