#include "crypto/hmac.h"

#include <cstring>

namespace omadrm::crypto {

HmacSha1::HmacSha1(ByteView key) {
  std::uint8_t k[Sha1::kBlockSize] = {};
  if (key.size() > Sha1::kBlockSize) {
    Sha1 h;
    h.update(key);
    h.finish_into(k);
  } else if (!key.empty()) {
    std::memcpy(k, key.data(), key.size());
  }
  for (std::size_t i = 0; i < Sha1::kBlockSize; ++i) {
    ipad_key_[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad_key_[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  reset();
}

void HmacSha1::reset() {
  inner_.reset();
  inner_.update(ByteView(ipad_key_.data(), ipad_key_.size()));
}

void HmacSha1::update(ByteView data) { inner_.update(data); }

void HmacSha1::finish_into(std::uint8_t out[kDigestSize]) {
  std::uint8_t inner_digest[Sha1::kDigestSize];
  inner_.finish_into(inner_digest);
  Sha1 outer;
  outer.update(ByteView(opad_key_.data(), opad_key_.size()));
  outer.update(ByteView(inner_digest, Sha1::kDigestSize));
  outer.finish_into(out);
}

Bytes HmacSha1::finish() {
  Bytes digest(kDigestSize);
  finish_into(digest.data());
  return digest;
}

Bytes HmacSha1::mac(ByteView key, ByteView data) {
  HmacSha1 h(key);
  h.update(data);
  return h.finish();
}

bool HmacSha1::verify(ByteView key, ByteView data, ByteView expected_tag) {
  HmacSha1 h(key);
  h.update(data);
  std::uint8_t tag[kDigestSize];
  h.finish_into(tag);
  return ct_equal(ByteView(tag, kDigestSize), expected_tag);
}

}  // namespace omadrm::crypto
