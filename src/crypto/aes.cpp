#include "crypto/aes.h"

#include "common/error.h"
#include "crypto/aes_accel.h"

namespace omadrm::crypto {

namespace {

// ---- GF(2^8) arithmetic (reduction polynomial x^8+x^4+x^3+x+1) ----------

std::uint8_t xtime(std::uint8_t a) {
  return static_cast<std::uint8_t>((a << 1) ^ ((a >> 7) * 0x1b));
}

std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  while (b) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

// All lookup tables, computed once from first principles.
struct Tables {
  std::uint8_t sbox[256];
  std::uint8_t inv_sbox[256];
  std::uint32_t te[4][256];  // encryption T-tables
  std::uint32_t td[4][256];  // decryption T-tables (equivalent inverse)
  std::uint8_t rcon[11];

  Tables() {
    // S-box: multiplicative inverse followed by the affine transform.
    // Build the inverse table via a log/antilog walk over generator 3.
    std::uint8_t pow3[256];
    std::uint8_t log3[256] = {};
    std::uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
      pow3[i] = x;
      log3[x] = static_cast<std::uint8_t>(i);
      x = static_cast<std::uint8_t>(x ^ xtime(x));  // multiply by 3
    }
    auto inv = [&](std::uint8_t a) -> std::uint8_t {
      if (a == 0) return 0;
      return pow3[(255 - log3[a]) % 255];
    };
    for (int i = 0; i < 256; ++i) {
      std::uint8_t v = inv(static_cast<std::uint8_t>(i));
      std::uint8_t s = 0x63;
      for (int b = 0; b < 8; ++b) {
        std::uint8_t bit = static_cast<std::uint8_t>(
            ((v >> b) ^ (v >> ((b + 4) % 8)) ^ (v >> ((b + 5) % 8)) ^
             (v >> ((b + 6) % 8)) ^ (v >> ((b + 7) % 8))) &
            1);
        s = static_cast<std::uint8_t>(s ^ (bit << b));
      }
      sbox[i] = s;
      inv_sbox[s] = static_cast<std::uint8_t>(i);
    }

    // T-tables. te0[a] packs MixColumns of the substituted byte in the
    // first column position; te1..te3 are byte rotations of te0.
    for (int i = 0; i < 256; ++i) {
      std::uint8_t e = sbox[i];
      std::uint32_t w = (static_cast<std::uint32_t>(gmul(e, 2)) << 24) |
                        (static_cast<std::uint32_t>(e) << 16) |
                        (static_cast<std::uint32_t>(e) << 8) |
                        static_cast<std::uint32_t>(gmul(e, 3));
      te[0][i] = w;
      te[1][i] = (w >> 8) | (w << 24);
      te[2][i] = (w >> 16) | (w << 16);
      te[3][i] = (w >> 24) | (w << 8);

      std::uint8_t d = inv_sbox[i];
      std::uint32_t v = (static_cast<std::uint32_t>(gmul(d, 14)) << 24) |
                        (static_cast<std::uint32_t>(gmul(d, 9)) << 16) |
                        (static_cast<std::uint32_t>(gmul(d, 13)) << 8) |
                        static_cast<std::uint32_t>(gmul(d, 11));
      td[0][i] = v;
      td[1][i] = (v >> 8) | (v << 24);
      td[2][i] = (v >> 16) | (v << 16);
      td[3][i] = (v >> 24) | (v << 8);
    }

    rcon[0] = 0;  // unused
    std::uint8_t r = 1;
    for (int i = 1; i <= 10; ++i) {
      rcon[i] = r;
      r = xtime(r);
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

std::uint32_t sub_word(std::uint32_t w) {
  const Tables& t = tables();
  return (static_cast<std::uint32_t>(t.sbox[(w >> 24) & 0xff]) << 24) |
         (static_cast<std::uint32_t>(t.sbox[(w >> 16) & 0xff]) << 16) |
         (static_cast<std::uint32_t>(t.sbox[(w >> 8) & 0xff]) << 8) |
         static_cast<std::uint32_t>(t.sbox[w & 0xff]);
}

std::uint32_t rot_word(std::uint32_t w) { return (w << 8) | (w >> 24); }

// InvMixColumns applied to one round-key word (for the equivalent inverse
// cipher key schedule).
std::uint32_t inv_mix_word(std::uint32_t w) {
  std::uint8_t b0 = static_cast<std::uint8_t>(w >> 24);
  std::uint8_t b1 = static_cast<std::uint8_t>(w >> 16);
  std::uint8_t b2 = static_cast<std::uint8_t>(w >> 8);
  std::uint8_t b3 = static_cast<std::uint8_t>(w);
  auto mix = [](std::uint8_t a, std::uint8_t b, std::uint8_t c,
                std::uint8_t d) {
    return static_cast<std::uint32_t>(gmul(a, 14) ^ gmul(b, 11) ^
                                      gmul(c, 13) ^ gmul(d, 9));
  };
  return (mix(b0, b1, b2, b3) << 24) | (mix(b1, b2, b3, b0) << 16) |
         (mix(b2, b3, b0, b1) << 8) | mix(b3, b0, b1, b2);
}

}  // namespace

Aes::Aes(ByteView key) {
  if (key.size() != 16 && key.size() != 24 && key.size() != 32) {
    throw Error(ErrorKind::kCrypto, "AES key must be 16/24/32 bytes");
  }
  const Tables& t = tables();
  const std::size_t nk = key.size() / 4;
  rounds_ = static_cast<int>(nk + 6);
  const std::size_t nw = 4 * (static_cast<std::size_t>(rounds_) + 1);

  for (std::size_t i = 0; i < nk; ++i) {
    ek_[i] = load_be32(key.data() + 4 * i);
  }
  for (std::size_t i = nk; i < nw; ++i) {
    std::uint32_t temp = ek_[i - 1];
    if (i % nk == 0) {
      temp = sub_word(rot_word(temp)) ^
             (static_cast<std::uint32_t>(t.rcon[i / nk]) << 24);
    } else if (nk > 6 && i % nk == 4) {
      temp = sub_word(temp);
    }
    ek_[i] = ek_[i - nk] ^ temp;
  }

  // Equivalent-inverse-cipher decryption keys: reversed round order, with
  // InvMixColumns applied to all but the first and last round keys.
  const std::size_t nr = static_cast<std::size_t>(rounds_);
  for (std::size_t c = 0; c < 4; ++c) {
    dk_[c] = ek_[4 * nr + c];
    dk_[4 * nr + c] = ek_[c];
  }
  for (std::size_t r = 1; r < nr; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      dk_[4 * r + c] = inv_mix_word(ek_[4 * (nr - r) + c]);
    }
  }

  if (accel::cpu_supported()) {
    // The standard byte-order round keys are the big-endian stores of the
    // schedule words; the inverse-cipher keys come from AESIMC.
    for (std::size_t i = 0; i < nw; ++i) {
      store_be32(ek_[i], accel_ek_.data() + 4 * i);
    }
    accel::build_decrypt_schedule(accel_ek_.data(), rounds_,
                                  accel_dk_.data());
    has_accel_ = true;
  }
}

void Aes::encrypt_block(const std::uint8_t in[kBlockSize],
                        std::uint8_t out[kBlockSize]) const {
  const Tables& t = tables();
  std::uint32_t s0 = load_be32(in) ^ ek_[0];
  std::uint32_t s1 = load_be32(in + 4) ^ ek_[1];
  std::uint32_t s2 = load_be32(in + 8) ^ ek_[2];
  std::uint32_t s3 = load_be32(in + 12) ^ ek_[3];

  const std::size_t nr = static_cast<std::size_t>(rounds_);
  for (std::size_t r = 1; r < nr; ++r) {
    std::uint32_t t0 = t.te[0][s0 >> 24] ^ t.te[1][(s1 >> 16) & 0xff] ^
                       t.te[2][(s2 >> 8) & 0xff] ^ t.te[3][s3 & 0xff] ^
                       ek_[4 * r];
    std::uint32_t t1 = t.te[0][s1 >> 24] ^ t.te[1][(s2 >> 16) & 0xff] ^
                       t.te[2][(s3 >> 8) & 0xff] ^ t.te[3][s0 & 0xff] ^
                       ek_[4 * r + 1];
    std::uint32_t t2 = t.te[0][s2 >> 24] ^ t.te[1][(s3 >> 16) & 0xff] ^
                       t.te[2][(s0 >> 8) & 0xff] ^ t.te[3][s1 & 0xff] ^
                       ek_[4 * r + 2];
    std::uint32_t t3 = t.te[0][s3 >> 24] ^ t.te[1][(s0 >> 16) & 0xff] ^
                       t.te[2][(s1 >> 8) & 0xff] ^ t.te[3][s2 & 0xff] ^
                       ek_[4 * r + 3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }

  auto final_word = [&](std::uint32_t a, std::uint32_t b, std::uint32_t c,
                        std::uint32_t d, std::uint32_t rk) {
    return (static_cast<std::uint32_t>(t.sbox[a >> 24]) << 24 |
            static_cast<std::uint32_t>(t.sbox[(b >> 16) & 0xff]) << 16 |
            static_cast<std::uint32_t>(t.sbox[(c >> 8) & 0xff]) << 8 |
            static_cast<std::uint32_t>(t.sbox[d & 0xff])) ^
           rk;
  };
  store_be32(final_word(s0, s1, s2, s3, ek_[4 * nr]), out);
  store_be32(final_word(s1, s2, s3, s0, ek_[4 * nr + 1]), out + 4);
  store_be32(final_word(s2, s3, s0, s1, ek_[4 * nr + 2]), out + 8);
  store_be32(final_word(s3, s0, s1, s2, ek_[4 * nr + 3]), out + 12);
}

void Aes::decrypt_block(const std::uint8_t in[kBlockSize],
                        std::uint8_t out[kBlockSize]) const {
  const Tables& t = tables();
  std::uint32_t s0 = load_be32(in) ^ dk_[0];
  std::uint32_t s1 = load_be32(in + 4) ^ dk_[1];
  std::uint32_t s2 = load_be32(in + 8) ^ dk_[2];
  std::uint32_t s3 = load_be32(in + 12) ^ dk_[3];

  const std::size_t nr = static_cast<std::size_t>(rounds_);
  for (std::size_t r = 1; r < nr; ++r) {
    std::uint32_t t0 = t.td[0][s0 >> 24] ^ t.td[1][(s3 >> 16) & 0xff] ^
                       t.td[2][(s2 >> 8) & 0xff] ^ t.td[3][s1 & 0xff] ^
                       dk_[4 * r];
    std::uint32_t t1 = t.td[0][s1 >> 24] ^ t.td[1][(s0 >> 16) & 0xff] ^
                       t.td[2][(s3 >> 8) & 0xff] ^ t.td[3][s2 & 0xff] ^
                       dk_[4 * r + 1];
    std::uint32_t t2 = t.td[0][s2 >> 24] ^ t.td[1][(s1 >> 16) & 0xff] ^
                       t.td[2][(s0 >> 8) & 0xff] ^ t.td[3][s3 & 0xff] ^
                       dk_[4 * r + 2];
    std::uint32_t t3 = t.td[0][s3 >> 24] ^ t.td[1][(s2 >> 16) & 0xff] ^
                       t.td[2][(s1 >> 8) & 0xff] ^ t.td[3][s0 & 0xff] ^
                       dk_[4 * r + 3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }

  auto final_word = [&](std::uint32_t a, std::uint32_t b, std::uint32_t c,
                        std::uint32_t d, std::uint32_t rk) {
    return (static_cast<std::uint32_t>(t.inv_sbox[a >> 24]) << 24 |
            static_cast<std::uint32_t>(t.inv_sbox[(b >> 16) & 0xff]) << 16 |
            static_cast<std::uint32_t>(t.inv_sbox[(c >> 8) & 0xff]) << 8 |
            static_cast<std::uint32_t>(t.inv_sbox[d & 0xff])) ^
           rk;
  };
  store_be32(final_word(s0, s3, s2, s1, dk_[4 * nr]), out);
  store_be32(final_word(s1, s0, s3, s2, dk_[4 * nr + 1]), out + 4);
  store_be32(final_word(s2, s1, s0, s3, dk_[4 * nr + 2]), out + 8);
  store_be32(final_word(s3, s2, s1, s0, dk_[4 * nr + 3]), out + 12);
}

}  // namespace omadrm::crypto
