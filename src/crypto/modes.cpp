#include "crypto/modes.h"

#include <cstring>

#include "common/error.h"
#include "crypto/aes_accel.h"

namespace omadrm::crypto {

namespace {

// 16-byte XOR as four 32-bit words; memcpy keeps it alignment- and
// aliasing-safe and compiles to plain register moves.
inline void xor_block(std::uint8_t* out, const std::uint8_t* a,
                      const std::uint8_t* b) {
  std::uint32_t x[4];
  std::uint32_t y[4];
  std::memcpy(x, a, Aes::kBlockSize);
  std::memcpy(y, b, Aes::kBlockSize);
  x[0] ^= y[0];
  x[1] ^= y[1];
  x[2] ^= y[2];
  x[3] ^= y[3];
  std::memcpy(out, x, Aes::kBlockSize);
}

}  // namespace

Bytes pkcs7_pad(ByteView data, std::size_t block_size) {
  if (block_size == 0 || block_size > 255) {
    throw Error(ErrorKind::kRange, "pkcs7 block size out of range");
  }
  std::size_t pad = block_size - data.size() % block_size;
  Bytes out(data.begin(), data.end());
  out.insert(out.end(), pad, static_cast<std::uint8_t>(pad));
  return out;
}

std::size_t pkcs7_unpad_len(ByteView data, std::size_t block_size) {
  if (data.empty() || data.size() % block_size != 0) {
    throw Error(ErrorKind::kFormat, "pkcs7: bad padded length");
  }
  std::uint8_t pad = data.back();
  if (pad == 0 || pad > block_size) {
    throw Error(ErrorKind::kFormat, "pkcs7: bad padding byte");
  }
  for (std::size_t i = data.size() - pad; i < data.size(); ++i) {
    if (data[i] != pad) {
      throw Error(ErrorKind::kFormat, "pkcs7: inconsistent padding");
    }
  }
  return data.size() - pad;
}

Bytes pkcs7_unpad(ByteView data, std::size_t block_size) {
  const std::size_t len = pkcs7_unpad_len(data, block_size);
  return Bytes(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(len));
}

void cbc_encrypt_blocks(const Aes& aes, std::uint8_t chain[Aes::kBlockSize],
                        const std::uint8_t* in, std::uint8_t* out,
                        std::size_t n_blocks) {
  if (n_blocks == 0) return;
  if (aes.has_accel()) {
    accel::cbc_encrypt_blocks(aes.accel_enc_keys(), aes.rounds(), chain, in,
                              out, n_blocks);
    return;
  }
  const std::uint8_t* prev = chain;
  for (std::size_t i = 0; i < n_blocks; ++i) {
    std::uint8_t block[Aes::kBlockSize];
    xor_block(block, in + Aes::kBlockSize * i, prev);
    aes.encrypt_block(block, out + Aes::kBlockSize * i);
    prev = out + Aes::kBlockSize * i;
  }
  std::memcpy(chain, prev, Aes::kBlockSize);
}

void cbc_decrypt_blocks(const Aes& aes, std::uint8_t chain[Aes::kBlockSize],
                        const std::uint8_t* in, std::uint8_t* out,
                        std::size_t n_blocks) {
  if (n_blocks == 0) return;
  if (aes.has_accel()) {
    accel::cbc_decrypt_blocks(aes.accel_dec_keys(), aes.rounds(), chain, in,
                              out, n_blocks);
    return;
  }
  // Block 0 chains off the caller's chain value; every later block chains
  // off ciphertext still available in `in` (in/out must not alias), so no
  // per-block chain copies are needed.
  aes.decrypt_block(in, out);
  xor_block(out, out, chain);
  for (std::size_t i = 1; i < n_blocks; ++i) {
    aes.decrypt_block(in + Aes::kBlockSize * i, out + Aes::kBlockSize * i);
    xor_block(out + Aes::kBlockSize * i, out + Aes::kBlockSize * i,
              in + Aes::kBlockSize * (i - 1));
  }
  std::memcpy(chain, in + Aes::kBlockSize * (n_blocks - 1), Aes::kBlockSize);
}

void aes_cbc_encrypt_into(const Aes& aes, ByteView iv, ByteView plaintext,
                          Bytes& out) {
  if (iv.size() != Aes::kBlockSize) {
    throw Error(ErrorKind::kCrypto, "CBC IV must be 16 bytes");
  }
  const std::size_t full = plaintext.size() / Aes::kBlockSize;
  const std::size_t rem = plaintext.size() - full * Aes::kBlockSize;
  out.resize((full + 1) * Aes::kBlockSize);
  std::uint8_t chain[Aes::kBlockSize];
  std::memcpy(chain, iv.data(), Aes::kBlockSize);
  cbc_encrypt_blocks(aes, chain, plaintext.data(), out.data(), full);
  // Final block: the plaintext tail plus PKCS#7 padding (a whole padding
  // block when the input is aligned).
  std::uint8_t last[Aes::kBlockSize];
  if (rem > 0) std::memcpy(last, plaintext.data() + full * Aes::kBlockSize, rem);
  std::memset(last + rem, static_cast<int>(Aes::kBlockSize - rem),
              Aes::kBlockSize - rem);
  cbc_encrypt_blocks(aes, chain, last, out.data() + full * Aes::kBlockSize, 1);
}

void aes_cbc_decrypt_into(const Aes& aes, ByteView iv, ByteView ciphertext,
                          Bytes& out) {
  if (iv.size() != Aes::kBlockSize) {
    throw Error(ErrorKind::kCrypto, "CBC IV must be 16 bytes");
  }
  if (ciphertext.empty() || ciphertext.size() % Aes::kBlockSize != 0) {
    throw Error(ErrorKind::kFormat, "CBC ciphertext length invalid");
  }
  out.resize(ciphertext.size());
  std::uint8_t chain[Aes::kBlockSize];
  std::memcpy(chain, iv.data(), Aes::kBlockSize);
  cbc_decrypt_blocks(aes, chain, ciphertext.data(), out.data(),
                     ciphertext.size() / Aes::kBlockSize);
  out.resize(pkcs7_unpad_len(out, Aes::kBlockSize));
}

Bytes aes_cbc_encrypt(ByteView key, ByteView iv, ByteView plaintext) {
  Aes aes(key);
  Bytes out;
  aes_cbc_encrypt_into(aes, iv, plaintext, out);
  return out;
}

Bytes aes_cbc_decrypt(ByteView key, ByteView iv, ByteView ciphertext) {
  Aes aes(key);
  Bytes out;
  aes_cbc_decrypt_into(aes, iv, ciphertext, out);
  return out;
}

CbcDecryptStream::CbcDecryptStream(const Aes& aes, ByteView iv,
                                   ByteView ciphertext)
    : aes_(&aes), ct_(ciphertext) {
  if (iv.size() != Aes::kBlockSize) {
    throw Error(ErrorKind::kCrypto, "CBC IV must be 16 bytes");
  }
  if (ciphertext.empty() || ciphertext.size() % Aes::kBlockSize != 0) {
    throw Error(ErrorKind::kFormat, "CBC ciphertext length invalid");
  }
  std::memcpy(iv_, iv.data(), Aes::kBlockSize);
  std::memcpy(chain_, iv_, Aes::kBlockSize);
}

void CbcDecryptStream::rewind() {
  std::memcpy(chain_, iv_, Aes::kBlockSize);
  ct_off_ = 0;
  stage_pos_ = 0;
  stage_len_ = 0;
}

std::size_t CbcDecryptStream::read(std::span<std::uint8_t> out) {
  if (out.empty()) return 0;
  std::size_t produced = 0;
  while (produced < out.size()) {
    if (stage_pos_ < stage_len_) {
      const std::size_t take =
          std::min(stage_len_ - stage_pos_, out.size() - produced);
      std::memcpy(out.data() + produced, stage_ + stage_pos_, take);
      stage_pos_ += take;
      produced += take;
      continue;
    }
    const std::size_t ct_left = ct_.size() - ct_off_;
    if (ct_left == 0) break;
    // Every whole block ahead of the final (padding-bearing) one can be
    // decrypted straight into the caller's buffer in one fused run.
    const std::size_t bulk =
        std::min((out.size() - produced) / Aes::kBlockSize,
                 ct_left / Aes::kBlockSize - 1);
    if (bulk > 0) {
      cbc_decrypt_blocks(*aes_, chain_, ct_.data() + ct_off_,
                         out.data() + produced, bulk);
      ct_off_ += bulk * Aes::kBlockSize;
      produced += bulk * Aes::kBlockSize;
      continue;
    }
    // One block through the staging area: either the caller's buffer has
    // less than a block of room, or this is the final block and its
    // padding must be validated and stripped before any byte leaves.
    cbc_decrypt_blocks(*aes_, chain_, ct_.data() + ct_off_, stage_, 1);
    ct_off_ += Aes::kBlockSize;
    stage_pos_ = 0;
    stage_len_ = Aes::kBlockSize;
    if (ct_off_ == ct_.size()) {
      stage_len_ =
          pkcs7_unpad_len(ByteView(stage_, Aes::kBlockSize), Aes::kBlockSize);
    }
  }
  // When only the final block remains and the staging area is drained,
  // resolve it now: if it is pure padding (aligned plaintext), done()
  // must flip as soon as the last plaintext byte has been handed out.
  if (stage_pos_ == stage_len_ && ct_.size() - ct_off_ == Aes::kBlockSize) {
    cbc_decrypt_blocks(*aes_, chain_, ct_.data() + ct_off_, stage_, 1);
    ct_off_ += Aes::kBlockSize;
    stage_pos_ = 0;
    stage_len_ =
        pkcs7_unpad_len(ByteView(stage_, Aes::kBlockSize), Aes::kBlockSize);
  }
  return produced;
}

}  // namespace omadrm::crypto
