#include "crypto/modes.h"

#include <cstring>

#include "common/error.h"

namespace omadrm::crypto {

Bytes pkcs7_pad(ByteView data, std::size_t block_size) {
  if (block_size == 0 || block_size > 255) {
    throw Error(ErrorKind::kRange, "pkcs7 block size out of range");
  }
  std::size_t pad = block_size - data.size() % block_size;
  Bytes out(data.begin(), data.end());
  out.insert(out.end(), pad, static_cast<std::uint8_t>(pad));
  return out;
}

Bytes pkcs7_unpad(ByteView data, std::size_t block_size) {
  if (data.empty() || data.size() % block_size != 0) {
    throw Error(ErrorKind::kFormat, "pkcs7: bad padded length");
  }
  std::uint8_t pad = data.back();
  if (pad == 0 || pad > block_size) {
    throw Error(ErrorKind::kFormat, "pkcs7: bad padding byte");
  }
  for (std::size_t i = data.size() - pad; i < data.size(); ++i) {
    if (data[i] != pad) {
      throw Error(ErrorKind::kFormat, "pkcs7: inconsistent padding");
    }
  }
  return Bytes(data.begin(),
               data.begin() + static_cast<std::ptrdiff_t>(data.size() - pad));
}

Bytes aes_cbc_encrypt(ByteView key, ByteView iv, ByteView plaintext) {
  if (iv.size() != Aes::kBlockSize) {
    throw Error(ErrorKind::kCrypto, "CBC IV must be 16 bytes");
  }
  Aes aes(key);
  Bytes padded = pkcs7_pad(plaintext, Aes::kBlockSize);
  Bytes out(padded.size());
  std::uint8_t chain[Aes::kBlockSize];
  std::memcpy(chain, iv.data(), Aes::kBlockSize);
  for (std::size_t off = 0; off < padded.size(); off += Aes::kBlockSize) {
    std::uint8_t block[Aes::kBlockSize];
    for (std::size_t i = 0; i < Aes::kBlockSize; ++i) {
      block[i] = padded[off + i] ^ chain[i];
    }
    aes.encrypt_block(block, out.data() + off);
    std::memcpy(chain, out.data() + off, Aes::kBlockSize);
  }
  return out;
}

Bytes aes_cbc_decrypt(ByteView key, ByteView iv, ByteView ciphertext) {
  if (iv.size() != Aes::kBlockSize) {
    throw Error(ErrorKind::kCrypto, "CBC IV must be 16 bytes");
  }
  if (ciphertext.empty() || ciphertext.size() % Aes::kBlockSize != 0) {
    throw Error(ErrorKind::kFormat, "CBC ciphertext length invalid");
  }
  Aes aes(key);
  Bytes padded(ciphertext.size());
  std::uint8_t chain[Aes::kBlockSize];
  std::memcpy(chain, iv.data(), Aes::kBlockSize);
  for (std::size_t off = 0; off < ciphertext.size(); off += Aes::kBlockSize) {
    std::uint8_t block[Aes::kBlockSize];
    aes.decrypt_block(ciphertext.data() + off, block);
    for (std::size_t i = 0; i < Aes::kBlockSize; ++i) {
      padded[off + i] = block[i] ^ chain[i];
    }
    std::memcpy(chain, ciphertext.data() + off, Aes::kBlockSize);
  }
  return pkcs7_unpad(padded, Aes::kBlockSize);
}

}  // namespace omadrm::crypto
