#include "store/group_commit_store.h"

#include <algorithm>

#include "common/failpoint.h"

namespace omadrm::store {

Result<> GroupCommitStore::commit(const Transaction& tx) {
  if (tx.empty()) return Result<>();
  Waiter self;
  self.tx = &tx;

  UniqueLock lock(mu_);
  queue_.push_back(&self);
  if (leader_active_) {
    // A leader is already driving the backing store; it will pick this
    // transaction up in its next batch. Park until it reports back.
    cv_.wait(lock, [&] { return self.done; });
    return self.result;
  }

  // Leadership: drain the queue in batches until it is empty, then hand
  // the role back. The leader's own transaction rides the first batch.
  leader_active_ = true;
  while (!queue_.empty()) {
    std::vector<Waiter*> batch;
    batch.swap(queue_);
    lock.unlock();

    Transaction merged;
    for (const Waiter* w : batch) {
      for (const Transaction::Op& op : w->tx->ops()) {
        switch (op.kind) {
          case Transaction::Op::kPut:
            merged.put(op.key, op.value);
            break;
          case Transaction::Op::kErase:
            merged.erase(op.key);
            break;
          case Transaction::Op::kClear:
            merged.clear();
            break;
        }
      }
    }
    // Failpoint on the leader's backing commit: an injected failure (or
    // crash) here hits the WHOLE merged batch — the truthfulness contract
    // is that every parked waiter observes it, not just the leader.
    Result<> committed;
    const failpoint::Action fp =
        failpoint::fire("store.group_commit.commit");
    if (fp.op == failpoint::Op::kCrash) failpoint::crash_now();
    if (fp.op == failpoint::Op::kError) {
      committed = Result<>(StatusCode::kStoreFailure,
                           "group commit: injected leader failure");
    } else {
      committed = backing_.commit(merged);
    }

    lock.lock();
    ++stats_.batches;
    stats_.max_batch = std::max<std::uint64_t>(stats_.max_batch,
                                               batch.size());
    if (committed.ok()) stats_.committed_txs += batch.size();
    for (Waiter* w : batch) {
      w->result = committed;
      w->done = true;
    }
    cv_.notify_all();
  }
  leader_active_ = false;
  return self.result;
}

GroupCommitStore::Stats GroupCommitStore::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace omadrm::store
