// Durable StateStore backend: sealed append-only journal + atomic
// snapshot compaction + modeled monotonic hardware counter.
//
// On-medium layout (one directory per store):
//
//   journal.bin    a sequence of commit frames. Each frame carries its
//                  generation, the transaction's ops, and an HMAC-SHA1
//                  tag under the storage key. Appended (and flushed)
//                  BEFORE the commit returns.
//   snapshot.bin   the full record map at some generation, sealed as one
//                  unit. Rewritten atomically (temp file + rename) when
//                  the journal grows past Options::compact_after_bytes;
//                  journal frames at or below the snapshot generation are
//                  folded in and the journal is truncated.
//   counter.bin    the rollback guard. Models the terminal's monotonic
//                  hardware counter (fuse bank / RPMB in a real device,
//                  which is why its own rollback is outside the threat
//                  model here). Bumped after every journal append; a
//                  loaded image whose highest generation is below the
//                  counter is a replayed stale snapshot -> kStoreRollback.
//
// Commit ordering gives the crash-safety guarantee: frame append+flush,
// then counter bump, then the in-RAM apply. A crash mid-append leaves a
// torn tail whose commit never returned (the caller never delivered the
// grant), so dropping it on recovery can lose an undelivered grant but
// never refund a delivered one. A crash between append and counter bump
// leaves the journal exactly one generation ahead of the counter, which
// load() accepts (conservative: the burn is kept) and repairs.
//
// load() fails closed with distinct codes: kStoreCorrupt for structural
// truncation (including a torn tail, unless Options::recover_torn_tail
// opts into dropping it), kStoreSealBroken for any MAC failure, and
// kStoreRollback for a generation regression.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "store/state_store.h"

namespace omadrm::store {

class FileStore final : public StateStore {
 public:
  struct Options {
    /// Journal size that triggers snapshot compaction after a commit.
    std::size_t compact_after_bytes = 64 * 1024;
    /// Recovery policy for an incomplete trailing journal frame (the
    /// power-loss-mid-append artifact). Default is fail-closed
    /// (kStoreCorrupt); a reboot path that has decided the medium is its
    /// own (not an attacker's splice) opts in to dropping the torn tail.
    bool recover_torn_tail = false;
    /// fsync journal appends, counter bumps, and snapshot renames. Off
    /// trades durability-against-power-loss for speed (still durable
    /// against process death); benchmarks measure both.
    bool durable_fsync = true;
  };

  /// `directory` is created if missing. `storage_key` seals every frame,
  /// snapshot, and counter record (derive_storage_key(K_DEV) for an
  /// agent's store). Construction does no I/O; the first load()/commit()
  /// touches the medium.
  FileStore(std::string directory, Bytes storage_key, Options options);
  FileStore(std::string directory, Bytes storage_key);  // default Options
  ~FileStore() override;

  FileStore(const FileStore&) = delete;
  FileStore& operator=(const FileStore&) = delete;

  Result<> commit(const Transaction& tx) override;
  Result<std::vector<Record>> load() override;
  std::uint64_t generation() const override { return generation_; }

  /// Folds the journal into a fresh sealed snapshot and truncates it.
  /// Called automatically past compact_after_bytes; public for tests and
  /// benchmarks.
  Result<> compact();

  std::size_t journal_bytes() const { return journal_size_; }
  const std::string& directory() const { return directory_; }

  /// Crash injection (tests): after `n` more journal bytes are written,
  /// the append stops mid-frame and the commit fails — byte-accurate
  /// power-loss simulation. The torn file is left for a reloader to find.
  void set_journal_fault_after(std::size_t n) {
    fault_armed_ = true;
    fault_budget_ = n;
  }

 private:
  Result<> ensure_loaded();
  Result<> append_journal(ByteView frame);
  Result<> write_counter(std::uint64_t value);
  Result<> read_counter(bool& present, std::uint64_t& value) const;
  Result<> read_snapshot(std::uint64_t& snapshot_generation);
  Result<> replay_journal(std::uint64_t snapshot_generation,
                          std::uint64_t& last_generation);
  void apply(const Transaction& tx);
  std::string path(const char* file) const;

  std::string directory_;
  Bytes storage_key_;
  Options options_;

  std::map<std::string, Bytes, std::less<>> records_;
  std::uint64_t generation_ = 0;
  std::size_t journal_size_ = 0;
  int journal_fd_ = -1;
  int counter_fd_ = -1;  // buffered-mode in-place counter writes
  bool loaded_ = false;

  bool fault_armed_ = false;
  std::size_t fault_budget_ = 0;
};

}  // namespace omadrm::store
