// Group-commit decorator over any StateStore.
//
// A durable backend pays one journal append + fsync per commit, so N
// shards committing concurrently serialize into N fsyncs. This decorator
// batches them: concurrent committers enqueue their transactions, one of
// them becomes the batch leader, merges every queued transaction into a
// single backing commit (one append, one fsync), and wakes the rest with
// the shared result. Under contention the fsync cost is amortized across
// the whole batch; a lone committer degrades to exactly one backing
// commit with no extra latency.
//
// Semantics: ops apply in arrival order, each transaction stays intact
// within the merged batch (atomicity per tx is preserved because the
// whole batch is one atomic backing commit). The backing generation
// advances once per BATCH, not per transaction — callers that need a
// per-tx rollback epoch should read generation() through this decorator,
// which reports batches. A failed backing commit fails every transaction
// in the batch; since callers treat kStore* codes as "nothing was
// applied" and the backing commit is atomic, that stays truthful.
//
// Only commit() is designed for concurrency. load() and generation()
// forward to the backing store and belong to config time (bind_store,
// restart) or after traffic drains, matching how every caller already
// uses them.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <vector>

#include "common/ordered_mutex.h"
#include "common/thread_annotations.h"
#include "store/state_store.h"

namespace omadrm::store {

class GroupCommitStore final : public StateStore {
 public:
  struct Stats {
    std::uint64_t batches = 0;        // backing commits issued
    std::uint64_t committed_txs = 0;  // transactions in successful batches
    std::uint64_t max_batch = 0;      // largest batch merged so far
  };

  explicit GroupCommitStore(StateStore& backing) : backing_(backing) {}

  Result<> commit(const Transaction& tx) override;
  Result<std::vector<Record>> load() override { return backing_.load(); }
  std::uint64_t generation() const override { return backing_.generation(); }

  Stats stats() const;

 private:
  struct Waiter {
    const Transaction* tx = nullptr;
    Result<> result;
    bool done = false;
  };

  StateStore& backing_;
  // Rank kStoreFront: taken with shard/meta locks held; the leader
  // RELEASES it before driving the backing store (rank kStoreBacking),
  // so the two store ranks never actually nest — the ordering still
  // holds if that ever changes. condition_variable_any because the
  // rank-checked mutex is a custom Lockable.
  mutable OrderedMutex mu_{LockRank::kStoreFront, "store.front"};
  std::condition_variable_any cv_;
  std::vector<Waiter*> queue_ GUARDED_BY(mu_);
  bool leader_active_ GUARDED_BY(mu_) = false;
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace omadrm::store
