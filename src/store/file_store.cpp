#include "store/file_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/failpoint.h"
#include "crypto/hmac.h"

namespace omadrm::store {

namespace {

constexpr const char* kJournalFile = "journal.bin";
constexpr const char* kSnapshotFile = "snapshot.bin";
constexpr const char* kCounterFile = "counter.bin";

// Magics pin the file kind so a snapshot can never be fed to the counter
// parser (and vice versa) even before the MAC is checked.
constexpr char kSnapshotMagic[8] = {'O', 'M', 'D', 'S', 'N', 'A', 'P', '1'};
constexpr char kCounterMagic[8] = {'O', 'M', 'D', 'C', 'N', 'T', 'R', '1'};

constexpr std::size_t kTagSize = crypto::HmacSha1::kDigestSize;
constexpr std::size_t kCounterFileSize = 8 + 8 + kTagSize;

std::string errno_context(const char* what) {
  return std::string("file store: ") + what + ": " + std::strerror(errno);
}

Result<> io_fail(const char* what) {
  return Result<>(StatusCode::kStoreFailure, errno_context(what));
}

/// Evaluates a failpoint site; crash mode dies here, error mode returns
/// the simulated errno (already stored into `errno` so io_fail's
/// strerror reports the injected cause — EIO vs ENOSPC stays visible).
bool injected_failure(const char* site) {
  const int err = failpoint::check(site);
  if (err == 0) return false;
  errno = err;
  return true;
}

/// The four failpoint sites of one atomic_replace call chain, as static
/// literals so the production path never builds site-name strings.
struct ReplaceSites {
  const char* open;
  const char* write;
  const char* fsync;
  const char* rename;
};

constexpr ReplaceSites kCounterReplaceSites{
    "store.counter.replace.open", "store.counter.replace.write",
    "store.counter.replace.fsync", "store.counter.replace.rename"};
constexpr ReplaceSites kSnapshotReplaceSites{
    "store.snapshot.replace.open", "store.snapshot.replace.write",
    "store.snapshot.replace.fsync", "store.snapshot.replace.rename"};

/// Seals `payload` under `key` with a one-byte domain-separation prefix
/// ('J' journal frame, 'S' snapshot, 'C' counter) so a valid tag from one
/// file kind can never authenticate bytes of another.
std::array<std::uint8_t, kTagSize> seal_tag(ByteView key, char domain,
                                            ByteView payload) {
  crypto::HmacSha1 h(key);
  const std::uint8_t d = static_cast<std::uint8_t>(domain);
  h.update(ByteView(&d, 1));
  h.update(payload);
  std::array<std::uint8_t, kTagSize> tag;
  h.finish_into(tag.data());
  return tag;
}

bool check_tag(ByteView key, char domain, ByteView payload, ByteView tag) {
  return ct_equal(seal_tag(key, domain, payload), tag);
}

/// Reads a whole file; `present` is false (with empty `out`) on ENOENT.
Result<> read_file(const std::string& file_path, bool& present, Bytes& out) {
  present = false;
  out.clear();
  int fd = ::open(file_path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Result<>();
    return io_fail("open for read");
  }
  present = true;
  std::uint8_t buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return io_fail("read");
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return Result<>();
}

Result<> write_fully(int fd, ByteView data) {
  std::size_t off = 0;
  while (off < data.size()) {
    // nofailpoint: shared raw-write helper; every caller gates it behind
    // its own site (store.journal.write, *.replace.write).
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_fail("write");
    }
    off += static_cast<std::size_t>(n);
  }
  return Result<>();
}

Result<> pwrite_fully(int fd, ByteView data, off_t offset) {
  std::size_t off = 0;
  while (off < data.size()) {
    // nofailpoint: gated by the caller's store.counter.pwrite site.
    ssize_t n = ::pwrite(fd, data.data() + off, data.size() - off,
                         offset + static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_fail("pwrite");
    }
    off += static_cast<std::size_t>(n);
  }
  return Result<>();
}

/// Atomically replaces `final_path` with `data`: temp write (+fsync when
/// `durable`), rename over the target, directory fsync. A crash leaves
/// either the old file or the new one, never a torn mix.
Result<> atomic_replace(const std::string& directory,
                        const std::string& final_path, ByteView data,
                        bool durable, const ReplaceSites& sites) {
  const std::string tmp = final_path + ".tmp";
  if (injected_failure(sites.open)) return io_fail("open temp for replace");
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0600);
  if (fd < 0) return io_fail("open temp for replace");
  Result<> w = injected_failure(sites.write) ? io_fail("write temp")
                                             : write_fully(fd, data);
  if (w.ok() && durable) {
    if (injected_failure(sites.fsync) || ::fsync(fd) != 0) {
      w = io_fail("fsync temp for replace");
    }
  }
  ::close(fd);
  if (!w.ok()) {
    ::unlink(tmp.c_str());
    return w;
  }
  if (injected_failure(sites.rename) ||
      ::rename(tmp.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return io_fail("rename over target");
  }
  if (durable) {
    int dirfd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
    if (dirfd >= 0) {
      // nofailpoint: best-effort directory-entry fsync after the rename
      // already succeeded; a crash here replays as the (complete) new
      // file or the (complete) old one — no torn state to inject into.
      ::fsync(dirfd);
      ::close(dirfd);
    }
  }
  return Result<>();
}

}  // namespace

FileStore::FileStore(std::string directory, Bytes storage_key,
                     Options options)
    : directory_(std::move(directory)),
      storage_key_(std::move(storage_key)),
      options_(options) {}

FileStore::FileStore(std::string directory, Bytes storage_key)
    : FileStore(std::move(directory), std::move(storage_key), Options()) {}

FileStore::~FileStore() {
  if (journal_fd_ >= 0) ::close(journal_fd_);
  if (counter_fd_ >= 0) ::close(counter_fd_);
}

std::string FileStore::path(const char* file) const {
  return directory_ + "/" + file;
}

Result<> FileStore::ensure_loaded() {
  if (loaded_) return Result<>();
  Result<std::vector<Record>> r = load();
  if (!r.ok()) return Result<>(r.code(), r.context());
  return Result<>();
}

// ---------------------------------------------------------------------------
// Commit path
// ---------------------------------------------------------------------------

Result<> FileStore::append_journal(ByteView frame) {
  ByteView to_write = frame;
  bool inject_fault = false;
  if (fault_armed_) {
    if (frame.size() > fault_budget_) {
      // Power loss mid-append: only the budgeted prefix reaches the
      // medium, and the store goes dead until a reload recovers the
      // tail. One-shot — after the reload, commits work again.
      to_write = frame.subspan(0, fault_budget_);
      fault_budget_ = 0;
      fault_armed_ = false;
      inject_fault = true;
    } else {
      fault_budget_ -= frame.size();
    }
  }
  const failpoint::Action fp = failpoint::fire("store.journal.write");
  if (fp.op == failpoint::Op::kError) {
    errno = fp.err;
    return io_fail("journal append");
  }
  if (fp.op == failpoint::Op::kCrash) {
    // Crash mid-append: half the frame reaches the fd, then the process
    // dies — the torn-tail artifact Options::recover_torn_tail exists
    // for, now producible in a real child process instead of only via
    // the byte-budget hook.
    (void)!::write(journal_fd_, to_write.data(), to_write.size() / 2);
    failpoint::crash_now();
  }
  if (Result<> r = write_fully(journal_fd_, to_write); !r.ok()) return r;
  if (options_.durable_fsync) {
    if (injected_failure("store.journal.fsync") ||
        ::fsync(journal_fd_) != 0) {
      return io_fail("fsync journal");
    }
  }
  journal_size_ += to_write.size();
  if (inject_fault) {
    loaded_ = false;  // no further commits until a reload recovers the tail
    return Result<>(StatusCode::kStoreFailure,
                    "file store: injected power loss mid-append");
  }
  return Result<>();
}

Result<> FileStore::write_counter(std::uint64_t value) {
  Bytes data;
  data.reserve(kCounterFileSize);
  data.insert(data.end(), kCounterMagic, kCounterMagic + 8);
  append_be64(data, value);
  auto tag = seal_tag(storage_key_, 'C', data);
  data.insert(data.end(), tag.begin(), tag.end());

  if (!options_.durable_fsync) {
    // Buffered tier promises durability against process death only; for
    // that, one in-place pwrite of the 36-byte record on a kept-open fd
    // is atomic (the page cache survives any kill) and ~10x cheaper than
    // the atomic-replace dance below.
    if (counter_fd_ < 0) {
      counter_fd_ = ::open(path(kCounterFile).c_str(),
                           O_RDWR | O_CREAT | O_CLOEXEC, 0600);
      if (counter_fd_ < 0) return io_fail("open counter");
    }
    if (injected_failure("store.counter.pwrite")) {
      return io_fail("counter pwrite");
    }
    return pwrite_fully(counter_fd_, data, 0);
  }

  // Temp-write + rename models the atomic bump of a hardware counter: a
  // power loss leaves either the old or the new value, never a torn one.
  return atomic_replace(directory_, path(kCounterFile), data,
                        /*durable=*/true, kCounterReplaceSites);
}

void FileStore::apply(const Transaction& tx) {
  for (const Transaction::Op& op : tx.ops()) {
    switch (op.kind) {
      case Transaction::Op::kPut:
        records_[op.key] = op.value;
        break;
      case Transaction::Op::kErase:
        records_.erase(op.key);
        break;
      case Transaction::Op::kClear:
        records_.clear();
        break;
    }
  }
}

Result<> FileStore::commit(const Transaction& tx) {
  if (Result<> r = ensure_loaded(); !r.ok()) return r;
  if (tx.empty()) return Result<>();

  const std::uint64_t next = generation_ + 1;
  Bytes body;
  append_be64(body, next);
  append_be32(body, static_cast<std::uint32_t>(tx.ops().size()));
  for (const Transaction::Op& op : tx.ops()) {
    body.push_back(static_cast<std::uint8_t>(op.kind));
    append_be32(body, static_cast<std::uint32_t>(op.key.size()));
    body.insert(body.end(), op.key.begin(), op.key.end());
    if (op.kind == Transaction::Op::kPut) {
      append_be32(body, static_cast<std::uint32_t>(op.value.size()));
      body.insert(body.end(), op.value.begin(), op.value.end());
    }
  }
  Bytes frame;
  frame.reserve(4 + body.size() + kTagSize);
  append_be32(frame, static_cast<std::uint32_t>(body.size()));
  frame.insert(frame.end(), body.begin(), body.end());
  // The tag covers the length prefix too, so a frame cannot be re-framed.
  auto tag = seal_tag(storage_key_, 'J', frame);
  frame.insert(frame.end(), tag.begin(), tag.end());

  // Durability order: frame on the medium first, then the counter bump,
  // then the in-RAM apply. Every crash window between these steps loses
  // at most this not-yet-delivered commit — never an older, delivered one.
  //
  // Any write failure (injected or real — ENOSPC, EIO) leaves the
  // journal in an unknown on-medium state: a partially appended frame,
  // or a complete frame whose counter bump is missing. Accepting further
  // commits on top would corrupt the image permanently (torn bytes in
  // the middle, duplicate generations), so the store goes dead until a
  // load() re-derives the truth from the medium — which also repairs the
  // journal-one-ahead-of-counter case.
  if (Result<> r = append_journal(frame); !r.ok()) {
    loaded_ = false;
    return r;
  }
  if (Result<> r = write_counter(next); !r.ok()) {
    loaded_ = false;
    return r;
  }
  apply(tx);
  generation_ = next;

  if (journal_size_ > options_.compact_after_bytes) {
    // Best-effort: the ops above are already durable, so a failed
    // compaction must not report this commit as failed (the caller would
    // refund in RAM what the medium has burned). The next commit retries.
    (void)compact();
  }
  return Result<>();
}

Result<> FileStore::compact() {
  if (!loaded_) {
    return Result<>(StatusCode::kStoreFailure,
                    "file store: compact before load");
  }
  Bytes data;
  data.insert(data.end(), kSnapshotMagic, kSnapshotMagic + 8);
  append_be64(data, generation_);
  append_be32(data, static_cast<std::uint32_t>(records_.size()));
  for (const auto& [key, value] : records_) {
    append_be32(data, static_cast<std::uint32_t>(key.size()));
    data.insert(data.end(), key.begin(), key.end());
    append_be32(data, static_cast<std::uint32_t>(value.size()));
    data.insert(data.end(), value.begin(), value.end());
  }
  auto tag = seal_tag(storage_key_, 'S', data);
  data.insert(data.end(), tag.begin(), tag.end());

  if (Result<> r = atomic_replace(directory_, path(kSnapshotFile), data,
                                  options_.durable_fsync,
                                  kSnapshotReplaceSites);
      !r.ok()) {
    return r;
  }
  // Only after the snapshot is durably in place may the journal shrink; a
  // crash in between just leaves folded frames that load() skips.
  if (injected_failure("store.compact.truncate") ||
      ::ftruncate(journal_fd_, 0) != 0) {
    return io_fail("truncate journal");
  }
  journal_size_ = 0;
  if (options_.durable_fsync) {
    if (injected_failure("store.compact.fsync") ||
        ::fsync(journal_fd_) != 0) {
      return io_fail("fsync truncated journal");
    }
  }
  return Result<>();
}

// ---------------------------------------------------------------------------
// Load path
// ---------------------------------------------------------------------------

Result<> FileStore::read_counter(bool& present, std::uint64_t& value) const {
  Bytes data;
  if (Result<> r = read_file(path(kCounterFile), present, data); !r.ok()) {
    return r;
  }
  if (!present) return Result<>();
  if (data.size() != kCounterFileSize) {
    return Result<>(StatusCode::kStoreCorrupt,
                    "file store: counter file truncated");
  }
  if (std::memcmp(data.data(), kCounterMagic, 8) != 0) {
    return Result<>(StatusCode::kStoreCorrupt,
                    "file store: counter magic mismatch");
  }
  ByteView payload = ByteView(data).subspan(0, 16);
  ByteView tag = ByteView(data).subspan(16, kTagSize);
  if (!check_tag(storage_key_, 'C', payload, tag)) {
    return Result<>(StatusCode::kStoreSealBroken,
                    "file store: counter seal rejected");
  }
  value = load_be64(data.data() + 8);
  return Result<>();
}

Result<> FileStore::read_snapshot(std::uint64_t& snapshot_generation) {
  snapshot_generation = 0;
  bool present = false;
  Bytes data;
  if (Result<> r = read_file(path(kSnapshotFile), present, data); !r.ok()) {
    return r;
  }
  if (!present) return Result<>();
  if (data.size() < 8 + 8 + 4 + kTagSize) {
    return Result<>(StatusCode::kStoreCorrupt,
                    "file store: snapshot truncated");
  }
  if (std::memcmp(data.data(), kSnapshotMagic, 8) != 0) {
    return Result<>(StatusCode::kStoreCorrupt,
                    "file store: snapshot magic mismatch");
  }
  ByteView payload = ByteView(data).first(data.size() - kTagSize);
  ByteView tag = ByteView(data).last(kTagSize);
  if (!check_tag(storage_key_, 'S', payload, tag)) {
    return Result<>(StatusCode::kStoreSealBroken,
                    "file store: snapshot seal rejected");
  }

  ByteReader c{payload.subspan(8)};
  std::uint64_t gen = 0;
  std::uint32_t count = 0;
  if (!c.take_u64(gen) || !c.take_u32(count)) {
    return Result<>(StatusCode::kStoreCorrupt,
                    "file store: snapshot header short");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t klen = 0, vlen = 0;
    ByteView key, value;
    if (!c.take_u32(klen) || !c.take_bytes(klen, key) ||
        !c.take_u32(vlen) || !c.take_bytes(vlen, value)) {
      return Result<>(StatusCode::kStoreCorrupt,
                      "file store: snapshot record malformed");
    }
    records_[std::string(key.begin(), key.end())] =
        Bytes(value.begin(), value.end());
  }
  if (c.remaining() != 0) {
    return Result<>(StatusCode::kStoreCorrupt,
                    "file store: snapshot trailing bytes");
  }
  snapshot_generation = gen;
  return Result<>();
}

Result<> FileStore::replay_journal(std::uint64_t snapshot_generation,
                                   std::uint64_t& last_generation) {
  bool present = false;
  Bytes data;
  if (Result<> r = read_file(path(kJournalFile), present, data); !r.ok()) {
    return r;
  }
  journal_size_ = data.size();
  if (!present || data.empty()) return Result<>();

  ByteReader c{ByteView(data)};
  while (c.remaining() > 0) {
    const std::size_t frame_start = c.pos;
    std::uint32_t body_len = 0;
    ByteView body, tag;
    if (!c.take_u32(body_len) || !c.take_bytes(body_len, body) ||
        !c.take_bytes(kTagSize, tag)) {
      // Incomplete trailing frame — the power-loss-mid-append artifact.
      // Its commit() never returned, so no grant rode on it; dropping it
      // is safe once the caller opted into recovery. Fail closed
      // otherwise.
      if (!options_.recover_torn_tail) {
        return Result<>(StatusCode::kStoreCorrupt,
                        "file store: journal truncated mid-frame");
      }
      // nofailpoint: torn-tail repair during load, before any traffic.
      // Recovery is idempotent — a crash mid-repair leaves a (shorter)
      // torn tail the next load repairs again; the crash matrix covers
      // the append side that creates these tails via store.journal.write.
      int fd = ::open(path(kJournalFile).c_str(), O_WRONLY | O_CLOEXEC);
      if (fd < 0) return io_fail("open journal for tail repair");
      int rc = ::ftruncate(fd, static_cast<off_t>(frame_start));
      if (rc == 0 && options_.durable_fsync) rc = ::fsync(fd);
      ::close(fd);
      if (rc != 0) return io_fail("truncate torn journal tail");
      journal_size_ = frame_start;
      break;
    }
    ByteView framed = ByteView(data).subspan(frame_start, 4 + body_len);
    if (!check_tag(storage_key_, 'J', framed, tag)) {
      return Result<>(StatusCode::kStoreSealBroken,
                      "file store: journal frame seal rejected");
    }

    ByteReader b{body};
    std::uint64_t gen = 0;
    std::uint32_t op_count = 0;
    if (!b.take_u64(gen) || !b.take_u32(op_count)) {
      return Result<>(StatusCode::kStoreCorrupt,
                      "file store: journal frame header short");
    }
    const bool fold = gen <= snapshot_generation;  // already in snapshot
    if (!fold && gen != last_generation + 1) {
      return Result<>(StatusCode::kStoreCorrupt,
                      "file store: journal generation gap");
    }
    for (std::uint32_t i = 0; i < op_count; ++i) {
      std::uint8_t kind_byte = 0;
      {
        ByteView kb;
        if (!b.take_bytes(1, kb)) {
          return Result<>(StatusCode::kStoreCorrupt,
                          "file store: journal op truncated");
        }
        kind_byte = kb[0];
      }
      std::uint32_t klen = 0;
      ByteView key;
      if (!b.take_u32(klen) || !b.take_bytes(klen, key)) {
        return Result<>(StatusCode::kStoreCorrupt,
                        "file store: journal op key malformed");
      }
      switch (kind_byte) {
        case Transaction::Op::kPut: {
          std::uint32_t vlen = 0;
          ByteView value;
          if (!b.take_u32(vlen) || !b.take_bytes(vlen, value)) {
            return Result<>(StatusCode::kStoreCorrupt,
                            "file store: journal op value malformed");
          }
          if (!fold) {
            records_[std::string(key.begin(), key.end())] =
                Bytes(value.begin(), value.end());
          }
          break;
        }
        case Transaction::Op::kErase:
          if (!fold) records_.erase(std::string(key.begin(), key.end()));
          break;
        case Transaction::Op::kClear:
          if (!fold) records_.clear();
          break;
        default:
          return Result<>(StatusCode::kStoreCorrupt,
                          "file store: unknown journal op kind");
      }
    }
    if (b.remaining() != 0) {
      return Result<>(StatusCode::kStoreCorrupt,
                      "file store: journal frame trailing bytes");
    }
    if (!fold) last_generation = gen;
  }
  return Result<>();
}

Result<std::vector<Record>> FileStore::load() {
  using Out = std::vector<Record>;
  loaded_ = false;
  records_.clear();
  generation_ = 0;
  journal_size_ = 0;
  if (journal_fd_ >= 0) {
    ::close(journal_fd_);
    journal_fd_ = -1;
  }
  if (counter_fd_ >= 0) {
    ::close(counter_fd_);
    counter_fd_ = -1;
  }

  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) {
    return Result<Out>(StatusCode::kStoreFailure,
                       "file store: cannot create " + directory_ + ": " +
                           ec.message());
  }

  bool counter_present = false;
  std::uint64_t counter = 0;
  if (Result<> r = read_counter(counter_present, counter); !r.ok()) {
    return propagate<Out>(r);
  }
  std::uint64_t snapshot_generation = 0;
  if (Result<> r = read_snapshot(snapshot_generation); !r.ok()) {
    return propagate<Out>(r);
  }
  std::uint64_t last = snapshot_generation;
  if (Result<> r = replay_journal(snapshot_generation, last); !r.ok()) {
    return propagate<Out>(r);
  }

  // Rollback detection against the modeled monotonic hardware counter.
  if (!counter_present) {
    if (last != 0) {
      return Result<Out>(StatusCode::kStoreRollback,
                         "file store: monotonic counter missing for "
                         "non-empty store");
    }
  } else if (last < counter) {
    return Result<Out>(
        StatusCode::kStoreRollback,
        "file store: state at generation " + std::to_string(last) +
            " but counter demands " + std::to_string(counter));
  } else if (last > counter + 1) {
    // The counter bump follows every append; it can lag by at most the
    // one in-flight commit. Further ahead means the counter was rolled
    // back — the same attack class as a stale snapshot.
    return Result<Out>(StatusCode::kStoreRollback,
                       "file store: counter behind journal by more than "
                       "one commit");
  } else if (last == counter + 1) {
    // Crash between frame flush and counter bump: the burn is kept
    // (conservative — it may never have been delivered) and the counter
    // repaired.
    if (Result<> r = write_counter(last); !r.ok()) return propagate<Out>(r);
  }
  generation_ = last;

  if (injected_failure("store.load.open")) {
    return propagate<Out>(io_fail("open journal"));
  }
  journal_fd_ = ::open(path(kJournalFile).c_str(),
                       O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0600);
  if (journal_fd_ < 0) return propagate<Out>(io_fail("open journal"));
  loaded_ = true;

  Out out;
  out.reserve(records_.size());
  for (const auto& [key, value] : records_) {
    out.push_back(Record{key, value});
  }
  return Result<Out>(std::move(out));
}

}  // namespace omadrm::store
