// Trusted-RAM StateStore backend.
//
// Backs tests and benchmarks, and any deployment whose secure storage is
// genuinely battery-backed RAM. No sealing: the medium itself is trusted
// (the FileStore is the backend that must defend its medium). Supports
// injected commit failures so callers' fail-closed paths are testable.
#pragma once

#include <cstdint>
#include <map>

#include "store/state_store.h"

namespace omadrm::store {

class MemoryStore final : public StateStore {
 public:
  MemoryStore() = default;

  Result<> commit(const Transaction& tx) override;
  Result<std::vector<Record>> load() override;
  std::uint64_t generation() const override { return generation_; }

  /// The next `n` commits fail with kStoreFailure without applying
  /// anything — exercises callers' refuse-to-grant-on-commit-failure
  /// paths.
  void fail_next_commits(std::uint64_t n) { fail_commits_ = n; }

  std::size_t record_count() const { return records_.size(); }

 private:
  std::map<std::string, Bytes, std::less<>> records_;
  std::uint64_t generation_ = 0;
  std::uint64_t fail_commits_ = 0;
};

}  // namespace omadrm::store
