// Trusted-RAM StateStore backend.
//
// Backs tests and benchmarks, and any deployment whose secure storage is
// genuinely battery-backed RAM. No sealing: the medium itself is trusted
// (the FileStore is the backend that must defend its medium). Supports
// injected commit failures so callers' fail-closed paths are testable.
//
// Thread-safe: commit/load/generation/record_count serialize on an
// internal mutex, so one MemoryStore can back the sharded RI while
// server workers commit from many shards at once. (fail_next_commits is
// test setup — arm it before the concurrent traffic starts.)
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

#include "store/state_store.h"

namespace omadrm::store {

class MemoryStore final : public StateStore {
 public:
  MemoryStore() = default;

  Result<> commit(const Transaction& tx) override;
  Result<std::vector<Record>> load() override;
  std::uint64_t generation() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return generation_;
  }

  /// The next `n` commits fail with kStoreFailure without applying
  /// anything — exercises callers' refuse-to-grant-on-commit-failure
  /// paths.
  void fail_next_commits(std::uint64_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_commits_ = n;
  }

  std::size_t record_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, Bytes, std::less<>> records_;
  std::uint64_t generation_ = 0;
  std::uint64_t fail_commits_ = 0;
};

}  // namespace omadrm::store
