// Trusted-RAM StateStore backend.
//
// Backs tests and benchmarks, and any deployment whose secure storage is
// genuinely battery-backed RAM. No sealing: the medium itself is trusted
// (the FileStore is the backend that must defend its medium). Supports
// injected commit failures so callers' fail-closed paths are testable.
//
// Thread-safe: commit/load/generation/record_count serialize on an
// internal mutex, so one MemoryStore can back the sharded RI while
// server workers commit from many shards at once. (fail_next_commits is
// test setup — arm it before the concurrent traffic starts.)
#pragma once

#include <cstdint>
#include <map>

#include "common/ordered_mutex.h"
#include "common/thread_annotations.h"
#include "store/state_store.h"

namespace omadrm::store {

class MemoryStore final : public StateStore {
 public:
  MemoryStore() = default;

  Result<> commit(const Transaction& tx) override;
  Result<std::vector<Record>> load() override;
  std::uint64_t generation() const override {
    MutexLock lock(mu_);
    return generation_;
  }

  /// The next `n` commits fail with kStoreFailure without applying
  /// anything — exercises callers' refuse-to-grant-on-commit-failure
  /// paths.
  void fail_next_commits(std::uint64_t n) {
    MutexLock lock(mu_);
    fail_commits_ = n;
  }

  std::size_t record_count() const {
    MutexLock lock(mu_);
    return records_.size();
  }

 private:
  // Rank kStoreBacking: the terminal store lock — commits arrive with a
  // shard (and sometimes meta / store.front) lock already held, and the
  // only thing ever taken under this is a failpoint registry lock.
  mutable OrderedMutex mu_{LockRank::kStoreBacking, "store.backing"};
  std::map<std::string, Bytes, std::less<>> records_ GUARDED_BY(mu_);
  std::uint64_t generation_ GUARDED_BY(mu_) = 0;
  std::uint64_t fail_commits_ GUARDED_BY(mu_) = 0;
};

}  // namespace omadrm::store
