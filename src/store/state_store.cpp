#include "store/state_store.h"

#include "crypto/kdf2.h"

namespace omadrm::store {

Bytes derive_storage_key(ByteView device_key) {
  static constexpr char kLabel[] = "omadrm:store:seal";
  return crypto::kdf2_sha1(device_key, 16,
                           to_bytes(std::string_view(kLabel)));
}

}  // namespace omadrm::store
