#include "store/memory_store.h"

namespace omadrm::store {

Result<> MemoryStore::commit(const Transaction& tx) {
  MutexLock lock(mu_);
  if (fail_commits_ > 0) {
    --fail_commits_;
    return Result<>(StatusCode::kStoreFailure,
                    "memory store: injected commit failure");
  }
  if (tx.empty()) return Result<>();
  for (const Transaction::Op& op : tx.ops()) {
    switch (op.kind) {
      case Transaction::Op::kPut:
        records_[op.key] = op.value;
        break;
      case Transaction::Op::kErase:
        records_.erase(op.key);
        break;
      case Transaction::Op::kClear:
        records_.clear();
        break;
    }
  }
  ++generation_;
  return Result<>();
}

Result<std::vector<Record>> MemoryStore::load() {
  MutexLock lock(mu_);
  std::vector<Record> out;
  out.reserve(records_.size());
  for (const auto& [key, value] : records_) {
    out.push_back(Record{key, value});
  }
  return Result<std::vector<Record>>(std::move(out));
}

}  // namespace omadrm::store
