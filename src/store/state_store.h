// Durable secure storage for stateful DRM entities.
//
// OMA DRM 2's stateful constraints (count, interval anchors, accumulated
// time) are only meaningful if a consumed use *stays* consumed across
// power loss: an agent that burns budgets in RAM and re-exports later is
// vulnerable to the classic stateful-license rollback — kill the process
// between the grant and the export and the use is silently refunded. The
// standard pushes the storage problem to the CA's robustness rules; the
// paper's embedded terminal answers it with secure (integrity- and
// rollback-protected) storage. This module models that layer:
//
//   StateStore    a tiny transactional key/value interface. A commit()
//                 is atomic (all ops or none) and durable before it
//                 returns; load() re-materializes every live record and
//                 FAILS CLOSED on any integrity violation.
//   MemoryStore   trusted-RAM backend for tests and benchmarks.
//   FileStore     append-only sealed journal + atomic snapshot
//                 compaction + a modeled monotonic hardware counter that
//                 makes stale-snapshot rollback detectable.
//
// Records in the FileStore are sealed with HMAC-SHA1 under a storage key
// derived (KDF2) from the device key K_DEV — the same root that protects
// installed Rights Objects (paper §2.4.3 replaces the PKI protection with
// protection under K_DEV; the store extends that umbrella to the agent's
// mutable state). Sealing provides integrity/authenticity; secrecy of the
// medium is modeled as "protected memory", as the export_state() blob
// always has been.
//
// Distinct fail-closed outcomes (see common/status.h):
//   kStoreCorrupt     truncated / structurally invalid image
//   kStoreSealBroken  a record or frame failed its MAC
//   kStoreRollback    generation regression vs the monotonic counter
//   kStoreFailure     backend I/O error; durability cannot be guaranteed
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace omadrm::store {

/// One live record: an opaque value under a unique key.
struct Record {
  std::string key;
  Bytes value;

  bool operator==(const Record&) const = default;
};

/// An ordered batch of mutations applied atomically by commit().
class Transaction {
 public:
  struct Op {
    enum Kind : std::uint8_t { kPut = 1, kErase = 2, kClear = 3 };
    Kind kind;
    std::string key;
    Bytes value;  // kPut only
  };

  Transaction& put(std::string_view key, Bytes value) {
    ops_.push_back(Op{Op::kPut, std::string(key), std::move(value)});
    return *this;
  }
  Transaction& erase(std::string_view key) {
    ops_.push_back(Op{Op::kErase, std::string(key), {}});
    return *this;
  }
  /// Drops every record before the following ops apply (full-image
  /// replacement, e.g. import_state).
  Transaction& clear() {
    ops_.push_back(Op{Op::kClear, {}, {}});
    return *this;
  }

  bool empty() const { return ops_.empty(); }
  const std::vector<Op>& ops() const { return ops_; }

 private:
  std::vector<Op> ops_;
};

/// The secure-storage seam. One instance holds one entity's state (a DRM
/// Agent's, a Rights Issuer's); callers commit whole consistency units —
/// notably a stateful constraint burn commits BEFORE the grant is
/// delivered, so a crash can lose an undelivered grant but can never
/// refund a delivered one.
class StateStore {
 public:
  virtual ~StateStore() = default;

  /// Applies `tx` atomically; on kOk the ops are durable and the
  /// generation counter has advanced by one. A failed commit leaves the
  /// store (and its on-medium image) at the previous generation.
  virtual Result<> commit(const Transaction& tx) = 0;

  /// (Re)loads every live record from the backing medium, sorted by key.
  /// Fails closed with one of the distinct kStore* codes above; a failure
  /// never yields partial records.
  virtual Result<std::vector<Record>> load() = 0;

  /// Number of commits applied over the store's lifetime (rollback
  /// epoch). 0 for a fresh store.
  virtual std::uint64_t generation() const = 0;
};

/// Derives the 128-bit storage sealing key from the device key K_DEV via
/// KDF2-SHA1 with a dedicated label, so the seal key can never collide
/// with the KEKs KDF2 derives during RO installation.
Bytes derive_storage_key(ByteView device_key);

}  // namespace omadrm::store
