#include "model/ledger.h"

namespace omadrm::model {

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kRegistration: return "Registration";
    case Phase::kAcquisition: return "Acquisition";
    case Phase::kInstallation: return "Installation";
    case Phase::kConsumption: return "Consumption";
    case Phase::kOther: return "Other";
  }
  return "?";
}

CycleLedger::CycleLedger(ArchitectureProfile profile)
    : profile_(std::move(profile)) {}

void CycleLedger::charge(Algorithm a, std::size_t ops, std::size_t blocks) {
  const auto p = static_cast<std::size_t>(phase_);
  const auto i = static_cast<std::size_t>(a);
  cycles_[p][i] += profile_.cycles(a, ops, blocks);
  ops_[p][i] += ops;
  blocks_[p][i] += blocks;
}

double CycleLedger::cycles(Phase p, Algorithm a) const {
  return cycles_[static_cast<std::size_t>(p)][static_cast<std::size_t>(a)];
}

double CycleLedger::cycles_by_phase(Phase p) const {
  double sum = 0;
  for (std::size_t i = 0; i < kAlgorithmCount; ++i) {
    sum += cycles_[static_cast<std::size_t>(p)][i];
  }
  return sum;
}

double CycleLedger::cycles_by_algorithm(Algorithm a) const {
  double sum = 0;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    sum += cycles_[p][static_cast<std::size_t>(a)];
  }
  return sum;
}

double CycleLedger::cycles_by_engine(Engine e) const {
  double sum = 0;
  for (std::size_t i = 0; i < kAlgorithmCount; ++i) {
    if (profile_.engine(static_cast<Algorithm>(i)) == e) {
      sum += cycles_by_algorithm(static_cast<Algorithm>(i));
    }
  }
  return sum;
}

double CycleLedger::total_cycles() const {
  double sum = 0;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    for (std::size_t i = 0; i < kAlgorithmCount; ++i) {
      sum += cycles_[p][i];
    }
  }
  return sum;
}

std::uint64_t CycleLedger::ops(Phase p, Algorithm a) const {
  return ops_[static_cast<std::size_t>(p)][static_cast<std::size_t>(a)];
}

std::uint64_t CycleLedger::ops_by_algorithm(Algorithm a) const {
  std::uint64_t sum = 0;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    sum += ops_[p][static_cast<std::size_t>(a)];
  }
  return sum;
}

std::uint64_t CycleLedger::blocks_by_algorithm(Algorithm a) const {
  std::uint64_t sum = 0;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    sum += blocks_[p][static_cast<std::size_t>(a)];
  }
  return sum;
}

double CycleLedger::pki_cycles() const {
  return cycles_by_algorithm(Algorithm::kRsaPublic) +
         cycles_by_algorithm(Algorithm::kRsaPrivate);
}

double CycleLedger::symmetric_cycles() const {
  return total_cycles() - pki_cycles();
}

void CycleLedger::reset() {
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    for (std::size_t i = 0; i < kAlgorithmCount; ++i) {
      cycles_[p][i] = 0;
      ops_[p][i] = 0;
      blocks_[p][i] = 0;
    }
  }
  phase_ = Phase::kOther;
}

}  // namespace omadrm::model
