#include "model/analytic.h"

#include "model/metered.h"

namespace omadrm::model {

namespace {

/// 128-bit blocks charged for a PSS sign/verify over `msg_bytes`.
std::size_t pss_hash_blocks(std::size_t msg_bytes) {
  return blocks128(msg_bytes) + kPssOverheadBlocks128;
}

/// AES block-cipher invocations for RFC 3394 over an n*8-byte payload.
std::size_t wrap_blocks(std::size_t payload_bytes) {
  return 6 * (payload_bytes / 8);
}
std::size_t unwrap_blocks(std::size_t wrapped_bytes) {
  return 6 * (wrapped_bytes / 8 - 1);
}

}  // namespace

UseCaseReport analytic_use_case(const UseCaseSpec& spec,
                                const ArchitectureProfile& profile,
                                const AnalyticParams& p) {
  CycleLedger ledger(profile);
  const std::size_t kdf_blocks =
      MeteredCryptoProvider::kdf2_blocks128(p.rsa_modulus_bytes, 16);

  // C2 wraps K_MAC||K_REK (32 bytes -> 40 wrapped); enc_kcek wraps K_CEK
  // (16 bytes -> 24 wrapped); C2dev re-wraps K_MAC||K_REK.
  const std::size_t c2_wrapped = 40;
  const std::size_t kcek_wrapped = 24;

  // -- Registration: 1 private + 3 public RSA ops (DESIGN.md §4) ----------
  {
    CycleLedger::PhaseScope phase(ledger, Phase::kRegistration);
    // Sign RegistrationRequest.
    ledger.charge(Algorithm::kSha1, 1, pss_hash_blocks(p.reg_request_bytes));
    ledger.charge(Algorithm::kRsaPrivate, 1, 1);
    // Verify RI certificate (TBS hash + RSAVP1).
    ledger.charge(Algorithm::kSha1, 1, pss_hash_blocks(p.cert_tbs_bytes));
    ledger.charge(Algorithm::kRsaPublic, 1, 1);
    // Verify stapled OCSP response.
    ledger.charge(Algorithm::kSha1, 1, pss_hash_blocks(p.ocsp_tbs_bytes));
    ledger.charge(Algorithm::kRsaPublic, 1, 1);
    // Verify RegistrationResponse signature.
    ledger.charge(Algorithm::kSha1, 1, pss_hash_blocks(p.reg_response_bytes));
    ledger.charge(Algorithm::kRsaPublic, 1, 1);

    if (spec.domain_ro) {
      // JoinDomain: sign request, verify response, unwrap the domain key.
      ledger.charge(Algorithm::kSha1, 1, pss_hash_blocks(p.ro_request_bytes));
      ledger.charge(Algorithm::kRsaPrivate, 1, 1);
      ledger.charge(Algorithm::kSha1, 1,
                    pss_hash_blocks(p.join_response_bytes));
      ledger.charge(Algorithm::kRsaPublic, 1, 1);
      ledger.charge(Algorithm::kRsaPrivate, 1, 1);  // RSADP on C1
      ledger.charge(Algorithm::kSha1, 1, kdf_blocks);
      ledger.charge(Algorithm::kAesDecrypt, 1, unwrap_blocks(kcek_wrapped));
    }
  }

  // -- Acquisition: 1 private + 1 public ------------------------------------
  {
    CycleLedger::PhaseScope phase(ledger, Phase::kAcquisition);
    ledger.charge(Algorithm::kSha1, 1, pss_hash_blocks(p.ro_request_bytes));
    ledger.charge(Algorithm::kRsaPrivate, 1, 1);
    ledger.charge(Algorithm::kSha1, 1, pss_hash_blocks(p.ro_response_bytes));
    ledger.charge(Algorithm::kRsaPublic, 1, 1);
  }

  // -- Installation ----------------------------------------------------------
  {
    CycleLedger::PhaseScope phase(ledger, Phase::kInstallation);
    if (spec.domain_ro) {
      // Domain RO: symmetric unwrap with K_D plus the mandatory RO
      // signature verification.
      ledger.charge(Algorithm::kAesDecrypt, 1, unwrap_blocks(c2_wrapped));
      ledger.charge(Algorithm::kSha1, 1,
                    pss_hash_blocks(p.mac_payload_bytes + 20));
      ledger.charge(Algorithm::kRsaPublic, 1, 1);
    } else {
      // RSADP(C1) -> KDF2 -> AES-UNWRAP(C2)  (Figure 3).
      ledger.charge(Algorithm::kRsaPrivate, 1, 1);
      ledger.charge(Algorithm::kSha1, 1, kdf_blocks);
      ledger.charge(Algorithm::kAesDecrypt, 1, unwrap_blocks(c2_wrapped));
    }
    // RO integrity check.
    ledger.charge(Algorithm::kHmacSha1, 1, blocks128(p.mac_payload_bytes));
    // Re-wrap K_MAC||K_REK under K_DEV -> C2dev.
    ledger.charge(Algorithm::kAesEncrypt, 1, wrap_blocks(32));
  }

  // -- Consumption: the §2.4.4 steps, once per access ------------------------
  {
    CycleLedger::PhaseScope phase(ledger, Phase::kConsumption);
    const std::size_t padded_payload = (spec.content_bytes / 16 + 1) * 16;
    const std::size_t dcf_bytes = p.dcf_overhead_bytes + padded_payload;
    for (std::size_t i = 0; i < spec.playbacks; ++i) {
      // 1. Decrypt C2dev with K_DEV.
      ledger.charge(Algorithm::kAesDecrypt, 1, unwrap_blocks(c2_wrapped));
      // 2. Verify RO integrity (MAC).
      ledger.charge(Algorithm::kHmacSha1, 1, blocks128(p.mac_payload_bytes));
      // 3. Verify DCF integrity (hash over the full container).
      ledger.charge(Algorithm::kSha1, 1, blocks128(dcf_bytes));
      // 4. Unlock K_CEK and decrypt the content.
      ledger.charge(Algorithm::kAesDecrypt, 1, unwrap_blocks(kcek_wrapped));
      ledger.charge(Algorithm::kAesDecrypt, 1, padded_payload / 16);
    }
  }

  return UseCaseReport{spec.name, ledger};
}

}  // namespace omadrm::model
