// Architecture profiles — the paper's three terminal variants (§3):
//
//   SW     pure software: every algorithm on the general-purpose core.
//   SW/HW  AES and SHA-1 (and therefore HMAC-SHA1) as dedicated hardware
//          macros, RSA in software.
//   HW     dedicated modules for every algorithm.
//
// All variants clock at 200 MHz, as the paper assumes. Custom profiles
// (arbitrary per-algorithm engine assignment, other clocks, edited cost
// tables) support the ablation benchmarks.
#pragma once

#include <string>

#include "model/cost_table.h"

namespace omadrm::model {

struct ArchitectureProfile {
  std::string name = "custom";
  Engine engines[kAlgorithmCount] = {};
  double clock_hz = 200e6;
  CostTable table = CostTable::paper_table1();

  Engine engine(Algorithm a) const {
    return engines[static_cast<std::size_t>(a)];
  }
  void set_engine(Algorithm a, Engine e) {
    engines[static_cast<std::size_t>(a)] = e;
  }

  /// Cycles for `ops` operations totalling `blocks` 128-bit blocks
  /// (for RSA, blocks = number of 1024-bit exponentiations).
  double cycles(Algorithm a, std::size_t ops, std::size_t blocks) const {
    const AlgoCost& c = table.cost(a, engine(a));
    return c.fixed_cycles * static_cast<double>(ops) +
           c.cycles_per_block * static_cast<double>(blocks);
  }

  double cycles_to_ms(double cycles) const {
    return cycles / clock_hz * 1000.0;
  }

  static ArchitectureProfile pure_software();
  static ArchitectureProfile symmetric_hardware();
  static ArchitectureProfile full_hardware();

  /// All three paper variants, in Figure 6/7 order (SW, SW/HW, HW).
  static const ArchitectureProfile* paper_variants(std::size_t* count);
};

}  // namespace omadrm::model
