#include "model/cost_table.h"

namespace omadrm::model {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kAesEncrypt: return "AES Encryption";
    case Algorithm::kAesDecrypt: return "AES Decryption";
    case Algorithm::kSha1: return "SHA-1";
    case Algorithm::kHmacSha1: return "HMAC SHA-1";
    case Algorithm::kRsaPublic: return "RSA 1024 Public Key Op";
    case Algorithm::kRsaPrivate: return "RSA 1024 Private Key Op";
  }
  return "?";
}

const char* to_string(Engine e) {
  return e == Engine::kSoftware ? "SW" : "HW";
}

CostTable CostTable::paper_table1() {
  CostTable t;
  auto set = [&t](Algorithm a, AlgoCost sw, AlgoCost hw) {
    t.software[static_cast<std::size_t>(a)] = sw;
    t.hardware[static_cast<std::size_t>(a)] = hw;
  };
  //                              --- software ---      --- hardware ---
  set(Algorithm::kAesEncrypt, {360, 830}, {0, 10});
  set(Algorithm::kAesDecrypt, {950, 830}, {10, 10});
  set(Algorithm::kSha1, {0, 400}, {0, 20});
  set(Algorithm::kHmacSha1, {1200, 400}, {240, 20});
  set(Algorithm::kRsaPublic, {0, 2160000}, {0, 10000});
  set(Algorithm::kRsaPrivate, {0, 37740000}, {0, 260000});
  return t;
}

}  // namespace omadrm::model
