// CycleLedger — the accounting core of the reproduction.
//
// Every metered cryptographic operation is charged here, attributed to
// (phase, algorithm, engine). The four phases are the paper's §2.4
// decomposition of the consumption process; figures 5/6/7 are different
// aggregations of this ledger.
#pragma once

#include <cstdint>

#include "model/arch.h"

namespace omadrm::model {

/// The paper's four consumption-process phases, plus a catch-all.
enum class Phase : std::uint8_t {
  kRegistration = 0,
  kAcquisition = 1,
  kInstallation = 2,
  kConsumption = 3,
  kOther = 4,
};

inline constexpr std::size_t kPhaseCount = 5;

const char* to_string(Phase p);

class CycleLedger {
 public:
  explicit CycleLedger(ArchitectureProfile profile);

  const ArchitectureProfile& profile() const { return profile_; }

  void set_phase(Phase p) { phase_ = p; }
  Phase phase() const { return phase_; }

  /// Charges `ops` operations of `a` totalling `blocks` 128-bit blocks
  /// (RSA: blocks = number of 1024-bit exponentiations) to the current
  /// phase, at the cost the profile assigns.
  void charge(Algorithm a, std::size_t ops, std::size_t blocks);

  // -- aggregations ---------------------------------------------------------
  double cycles(Phase p, Algorithm a) const;
  double cycles_by_phase(Phase p) const;
  double cycles_by_algorithm(Algorithm a) const;
  double cycles_by_engine(Engine e) const;
  double total_cycles() const;

  std::uint64_t ops(Phase p, Algorithm a) const;
  std::uint64_t ops_by_algorithm(Algorithm a) const;
  std::uint64_t blocks_by_algorithm(Algorithm a) const;

  /// Milliseconds at the profile's clock.
  double ms(Phase p) const { return profile_.cycles_to_ms(cycles_by_phase(p)); }
  double total_ms() const { return profile_.cycles_to_ms(total_cycles()); }

  /// PKI = RSA public + private; symmetric = everything else.
  double pki_cycles() const;
  double symmetric_cycles() const;

  void reset();

  /// RAII phase switcher.
  class PhaseScope {
   public:
    PhaseScope(CycleLedger& ledger, Phase p)
        : ledger_(ledger), saved_(ledger.phase()) {
      ledger_.set_phase(p);
    }
    ~PhaseScope() { ledger_.set_phase(saved_); }
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

   private:
    CycleLedger& ledger_;
    Phase saved_;
  };

 private:
  ArchitectureProfile profile_;
  Phase phase_ = Phase::kOther;
  double cycles_[kPhaseCount][kAlgorithmCount] = {};
  std::uint64_t ops_[kPhaseCount][kAlgorithmCount] = {};
  std::uint64_t blocks_[kPhaseCount][kAlgorithmCount] = {};
};

}  // namespace omadrm::model
