#include "model/report.h"

#include <cstdio>

#include "model/analytic.h"

namespace omadrm::model {

VariantMs run_variants(const UseCaseSpec& spec, bool analytic) {
  std::size_t count = 0;
  const ArchitectureProfile* variants =
      ArchitectureProfile::paper_variants(&count);
  double ms[3] = {};
  for (std::size_t i = 0; i < count && i < 3; ++i) {
    UseCaseReport r = analytic ? analytic_use_case(spec, variants[i])
                               : run_use_case(spec, variants[i]);
    ms[i] = r.total_ms();
  }
  return VariantMs{ms[0], ms[1], ms[2]};
}

std::string format_share_table(const UseCaseReport& report) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-28s %10s %8s\n", "algorithm",
                "cycles", "share");
  out += line;
  for (std::size_t i = 0; i < kAlgorithmCount; ++i) {
    Algorithm a = static_cast<Algorithm>(i);
    std::snprintf(line, sizeof line, "%-28s %10.3e %7.2f%%\n", to_string(a),
                  report.ledger.cycles_by_algorithm(a),
                  report.share(a) * 100.0);
    out += line;
  }
  return out;
}

std::string format_comparison(const std::string& label, double paper_value,
                              double model_value, const char* unit) {
  char line[200];
  double dev = paper_value != 0
                   ? (model_value - paper_value) / paper_value * 100.0
                   : 0.0;
  std::snprintf(line, sizeof line,
                "%-34s paper %9.1f %-3s  model %9.1f %-3s  dev %+6.1f%%\n",
                label.c_str(), paper_value, unit, model_value, unit, dev);
  return line;
}

}  // namespace omadrm::model
