// Closed-form analytic model.
//
// Independently recomputes the use-case cost from the per-phase operation
// list of DESIGN.md §4 — no protocol execution, just arithmetic over the
// Table-1 cost functions. This is the form the paper itself used ("build a
// model"), and it is what the parameter-sweep benchmarks iterate over
// (thousands of evaluations per second, versus one full protocol run per
// evaluation for the executed model). A test pins analytic == executed
// within a small tolerance, so sweeps are trustworthy.
#pragma once

#include "model/ledger.h"
#include "model/usecase.h"

namespace omadrm::model {

/// Nominal sizes of hashed/MACed byte strings, calibrated against the
/// serialized messages our stack actually produces. Only SHA-1/HMAC costs
/// over small messages depend on them; RSA op counts and content-sized
/// work are exact, so modest deviations are negligible (see test_model).
// Values measured from our serialized messages with examples/roap_inspector
// (RSA-1024 identities, one RO per response, a ~550-byte rights document).
struct AnalyticParams {
  std::size_t reg_request_bytes = 1100;   // RegistrationRequest XML
  std::size_t reg_response_bytes = 1300;  // RegistrationResponse XML
  std::size_t cert_tbs_bytes = 290;       // RI certificate TBS DER
  std::size_t ocsp_tbs_bytes = 165;       // OCSP ResponseData DER
  std::size_t ro_request_bytes = 400;     // RoRequest XML
  std::size_t ro_response_bytes = 1160;   // RoResponse XML (incl. RO)
  std::size_t mac_payload_bytes = 550;    // RO MAC-protected bytes
  std::size_t join_response_bytes = 460;  // JoinDomainResponse XML
  std::size_t dcf_overhead_bytes = 150;   // DCF container minus payload
  std::size_t rsa_modulus_bytes = 128;    // RSA-1024
};

/// Evaluates the closed-form model; the report's ledger carries the same
/// (phase, algorithm) attribution as an executed run.
UseCaseReport analytic_use_case(const UseCaseSpec& spec,
                                const ArchitectureProfile& profile,
                                const AnalyticParams& params = {});

}  // namespace omadrm::model
