#include "model/usecase.h"

#include "agent/drm_agent.h"
#include "ci/content_issuer.h"
#include "common/error.h"
#include "model/metered.h"
#include "pki/authority.h"
#include "provider/provider.h"
#include "ri/rights_issuer.h"
#include "roap/transport.h"

namespace omadrm::model {

using omadrm::Error;
using omadrm::ErrorKind;

UseCaseSpec UseCaseSpec::music_player() {
  UseCaseSpec s;
  s.name = "Music Player";
  s.content_bytes = static_cast<std::size_t>(3.5 * 1024 * 1024);  // 3.5 MB
  s.playbacks = 5;
  return s;
}

UseCaseSpec UseCaseSpec::ringtone() {
  UseCaseSpec s;
  s.name = "Ringtone";
  s.content_bytes = 30 * 1024;  // 30 KB
  s.playbacks = 25;
  return s;
}

namespace {

void ensure(bool ok, const char* step) {
  if (!ok) {
    throw Error(ErrorKind::kState,
                std::string("use case: step failed: ") + step);
  }
}

}  // namespace

UseCaseReport run_use_case(const UseCaseSpec& spec,
                           const ArchitectureProfile& profile) {
  DeterministicRng rng(spec.seed);
  provider::CryptoProvider& network_side = provider::plain_provider();

  CycleLedger ledger(profile);
  MeteredCryptoProvider terminal_crypto(ledger);

  // A plausible "now": the paper was written in late 2004.
  const std::uint64_t now = 1100000000;
  const pki::Validity validity{now - 86400, now + 365 * 86400};

  // Ecosystem setup (not part of any metered phase).
  pki::CertificationAuthority ca("CMLA Root CA", 1024, validity, rng);
  ci::ContentIssuer content_issuer("content.example", network_side, rng);
  ri::RightsIssuer ri("ri.example", "http://ri.example/roap", ca, validity,
                      network_side, rng);

  Bytes content = rng.bytes(spec.content_bytes);
  dcf::Headers headers;
  headers.content_type = "audio/mpeg";
  headers.content_id = "cid:" + spec.name + "@content.example";
  headers.rights_issuer_url = ri.url();
  headers.textual = {{"Title", spec.name}, {"Author", "Example Artist"}};
  dcf::Dcf dcf = content_issuer.package(headers, content);

  ri::LicenseOffer offer;
  offer.ro_id = "ro:" + spec.name;
  offer.content_id = headers.content_id;
  offer.dcf_hash = dcf.hash();
  rel::Permission play;
  play.type = rel::PermissionType::kPlay;
  if (spec.play_count_limit > 0) {
    play.constraint.count = spec.play_count_limit;
  }
  offer.permissions = {play};
  offer.kcek = *content_issuer.kcek_for(headers.content_id);
  if (spec.domain_ro) {
    offer.domain_ro = true;
    offer.domain_id = "domain:home";
    ri.create_domain(offer.domain_id);
  }
  ri.add_offer(offer);

  agent::DrmAgent device("device-01", ca.root_certificate(), terminal_crypto,
                         rng);
  device.provision(ca.issue("device-01", device.public_key(), validity, rng));
  roap::InProcessTransport transport(ri, now);

  // -- Phase 1: Registration (+ domain join when applicable) ----------------
  {
    CycleLedger::PhaseScope phase(ledger, Phase::kRegistration);
    ensure(device.register_with(transport, now).ok(), "registration");
    if (spec.domain_ro) {
      ensure(device.join_domain(transport, ri.ri_id(), offer.domain_id, now)
                 .ok(),
             "join domain");
    }
  }

  // -- Phase 2: Acquisition ---------------------------------------------------
  Result<roap::ProtectedRo> acquired(StatusCode::kNoRiContext);
  {
    CycleLedger::PhaseScope phase(ledger, Phase::kAcquisition);
    acquired = device.acquire_ro(transport, ri.ri_id(), offer.ro_id, now);
    ensure(acquired.ok(), "acquisition");
  }

  // -- Phase 3: Installation --------------------------------------------------
  {
    CycleLedger::PhaseScope phase(ledger, Phase::kInstallation);
    ensure(device.install_ro(*acquired, now) == agent::AgentStatus::kOk,
           "installation");
  }

  // -- Phase 4: Consumption ---------------------------------------------------
  {
    CycleLedger::PhaseScope phase(ledger, Phase::kConsumption);
    for (std::size_t i = 0; i < spec.playbacks; ++i) {
      agent::ConsumeResult r = device.consume(
          dcf, rel::PermissionType::kPlay, now + 60 * (i + 1));
      ensure(r.status == agent::AgentStatus::kOk, "consumption");
      ensure(r.content == content, "content round-trip");
    }
  }

  return UseCaseReport{spec.name, ledger};
}

}  // namespace omadrm::model
