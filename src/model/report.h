// Paper reference values and report formatting shared by the benchmark
// harnesses (one binary per table/figure, see bench/).
#pragma once

#include <string>

#include "model/usecase.h"

namespace omadrm::model {

/// A figure-6/7 style result: milliseconds per architecture variant.
struct VariantMs {
  double sw = 0;
  double swhw = 0;
  double hw = 0;
};

/// Values read from the paper's figures (log-scale bar charts, so these
/// are the printed data labels).
inline constexpr VariantMs kPaperFig6MusicPlayer{7730, 800, 190};
inline constexpr VariantMs kPaperFig7Ringtone{900, 620, 12};

/// §4: "Given that they total to roughly 600ms" — PKI software cost.
inline constexpr double kPaperPkiSoftwareMs = 600;

/// Runs (or analytically evaluates) a use case under the three paper
/// variants and returns the milliseconds triple.
VariantMs run_variants(const UseCaseSpec& spec, bool analytic = false);

/// Formats a percentage breakdown per algorithm (Figure 5's quantity).
std::string format_share_table(const UseCaseReport& report);

/// Formats an aligned paper-vs-model comparison row.
std::string format_comparison(const std::string& label, double paper_value,
                              double model_value, const char* unit);

}  // namespace omadrm::model
