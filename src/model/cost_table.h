// Table 1 of the paper: per-algorithm execution costs, in clock cycles,
// for a software implementation (ARM9-class core) and dedicated hardware
// macros (<200 MHz designs).
//
// Cost structure is `fixed + per_block * blocks`, where a *block* is the
// paper's normalization unit of 128 bits for the symmetric algorithms and
// one 1024-bit modular exponentiation for RSA. The fixed offsets are key
// scheduling (AES) and the fixed-length outer/inner hashing (HMAC),
// exactly as the paper's footnote explains.
//
// Sources (as cited by the paper): AES/SHA-1 hardware from Bertoni et al.
// 2004; RSA hardware from McIvor et al. 2003; RSA software from Gupta et
// al. 2002; symmetric software from the authors' internal measurements.
//
// Note on the RSA private-key software figure: the paper prints
// "3,774,0000" (sic). We resolve the typo to 37,740,000 cycles — the value
// consistent with the paper's own statement that PKI operations total
// "roughly 600 ms" at 200 MHz and with Figures 6/7 (see DESIGN.md §3).
#pragma once

#include <cstddef>
#include <cstdint>

namespace omadrm::model {

/// The six algorithm rows of Table 1.
enum class Algorithm : std::uint8_t {
  kAesEncrypt = 0,
  kAesDecrypt = 1,
  kSha1 = 2,
  kHmacSha1 = 3,
  kRsaPublic = 4,
  kRsaPrivate = 5,
};

inline constexpr std::size_t kAlgorithmCount = 6;

const char* to_string(Algorithm a);

/// Where an algorithm executes.
enum class Engine : std::uint8_t {
  kSoftware = 0,
  kHardware = 1,
};

inline constexpr std::size_t kEngineCount = 2;

const char* to_string(Engine e);

/// Cost of one algorithm on one engine.
struct AlgoCost {
  double fixed_cycles = 0;      // charged once per operation
  double cycles_per_block = 0;  // charged per 128-bit block / RSA op
};

struct CostTable {
  AlgoCost software[kAlgorithmCount];
  AlgoCost hardware[kAlgorithmCount];

  const AlgoCost& cost(Algorithm a, Engine e) const {
    return e == Engine::kSoftware
               ? software[static_cast<std::size_t>(a)]
               : hardware[static_cast<std::size_t>(a)];
  }

  /// The paper's Table 1, verbatim (with the RSA typo resolved).
  static CostTable paper_table1();
};

/// 128-bit blocks covering `bytes` (the paper's normalization unit).
constexpr std::size_t blocks128(std::size_t bytes) {
  return (bytes + 15) / 16;
}

}  // namespace omadrm::model
