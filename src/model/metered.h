// MeteredCryptoProvider — executes the real cryptography AND charges the
// cycle ledger with the paper's Table-1 costs for every operation.
//
// Charging rules (block = 128 bits, matching the paper's normalization):
//   AES-CBC        1 op (key schedule) + one block per ciphertext block
//   AES-WRAP       1 op + 6·n block-cipher invocations for n 64-bit halves
//   SHA-1          ceil(len/16) blocks
//   HMAC-SHA1      1 op (fixed-length inner/outer hashing) + data blocks
//   KDF2           SHA-1 blocks of each counter round
//   RSASSA-PSS     SHA-1 over the message + kPssOverheadBlocks128 for the
//                  EMSA-PSS internals (M' hash + MGF1) + 1 RSA op. The
//                  paper approximates PSS as "just one hash function over
//                  the message code" + primitive; the small constant keeps
//                  executed and analytic models aligned.
//   RSA-KEM        1 RSA op + the KDF2 hashing of the transported secret
#pragma once

#include "model/ledger.h"
#include "provider/provider.h"

namespace omadrm::model {

/// EMSA-PSS internal hashing, in 128-bit blocks: SHA-1 over the 48-byte
/// M' (3 blocks) plus MGF1 expansion of the ~107-byte DB mask for an
/// RSA-1024 encoding (6 rounds × 2 blocks = 12 blocks).
inline constexpr std::size_t kPssOverheadBlocks128 = 15;

class MeteredCryptoProvider final : public provider::PlainCryptoProvider {
 public:
  explicit MeteredCryptoProvider(CycleLedger& ledger) : ledger_(ledger) {}

  CycleLedger& ledger() { return ledger_; }

  Bytes sha1(ByteView data) override;
  Bytes hmac_sha1(ByteView key, ByteView data) override;
  bool hmac_verify(ByteView key, ByteView data, ByteView tag) override;
  Bytes aes_cbc_encrypt(ByteView key, ByteView iv,
                        ByteView plaintext) override;
  Bytes aes_cbc_decrypt(ByteView key, ByteView iv,
                        ByteView ciphertext) override;
  Bytes aes_wrap(ByteView kek, ByteView key_data) override;
  std::optional<Bytes> aes_unwrap(ByteView kek, ByteView wrapped) override;
  Bytes kdf2(ByteView z, std::size_t out_len) override;
  void charge_sha1(std::size_t data_len) override;
  void charge_aes_cbc_decrypt(std::size_t ciphertext_len) override;
  Bytes pss_sign(const rsa::PrivateKey& key, ByteView message,
                 Rng& rng) override;
  bool pss_verify(const rsa::PublicKey& key, ByteView message,
                  ByteView signature) override;
  rsa::KemEncapsulation kem_encapsulate(const rsa::PublicKey& key,
                                        Rng& rng) override;
  Bytes kem_decapsulate(const rsa::PrivateKey& key, ByteView c1) override;

  /// KDF2 hashing cost in 128-bit blocks for `z_len` secret bytes expanded
  /// to `out_len` bytes (shared with the analytic model).
  static std::size_t kdf2_blocks128(std::size_t z_len, std::size_t out_len);

 private:
  CycleLedger& ledger_;
};

}  // namespace omadrm::model
