// Use-case runner — executes the paper's two end-user scenarios (§4)
// against the real protocol stack with a metered terminal.
//
//   Music Player: 3.5 MB DCF; register, acquire, install, listen 5 times.
//   Ringtone:     30 KB DCF; register, acquire, install, 25 incoming calls.
//
// The run builds a complete ecosystem (CA, Content Issuer, Rights Issuer,
// DRM Agent), executes every ROAP pass and consumption step with real
// cryptography on real (synthetic, size-accurate) content, and returns the
// cycle ledger of the terminal side. The network-side actors use the
// unmetered provider — the paper models terminal performance only.
#pragma once

#include <cstdint>
#include <string>

#include "model/ledger.h"

namespace omadrm::model {

struct UseCaseSpec {
  std::string name;
  std::size_t content_bytes = 0;
  std::size_t playbacks = 0;
  /// Mint a Domain RO (adds the mandatory RO signature verification and
  /// the domain-join pass) — the paper's use cases set this to false.
  bool domain_ro = false;
  /// REL play-count limit; 0 = unconstrained.
  std::uint32_t play_count_limit = 0;
  std::uint64_t seed = 42;

  /// The paper's §4 scenarios.
  static UseCaseSpec music_player();
  static UseCaseSpec ringtone();
};

struct UseCaseReport {
  std::string name;
  CycleLedger ledger;

  double total_ms() const { return ledger.total_ms(); }
  double total_cycles() const { return ledger.total_cycles(); }
  /// Share of total processing time spent in `a` (Figure 5's quantity).
  double share(Algorithm a) const {
    double t = ledger.total_cycles();
    return t > 0 ? ledger.cycles_by_algorithm(a) / t : 0.0;
  }
};

/// Executes `spec` under `profile`; throws omadrm::Error(kState) if any
/// protocol step fails (they cannot, unless the stack itself regresses —
/// the integration tests pin that).
UseCaseReport run_use_case(const UseCaseSpec& spec,
                           const ArchitectureProfile& profile);

}  // namespace omadrm::model
