#include "model/arch.h"

#include <array>

namespace omadrm::model {

ArchitectureProfile ArchitectureProfile::pure_software() {
  ArchitectureProfile p;
  p.name = "SW";
  for (auto& e : p.engines) e = Engine::kSoftware;
  return p;
}

ArchitectureProfile ArchitectureProfile::symmetric_hardware() {
  ArchitectureProfile p;
  p.name = "SW/HW";
  for (auto& e : p.engines) e = Engine::kSoftware;
  p.set_engine(Algorithm::kAesEncrypt, Engine::kHardware);
  p.set_engine(Algorithm::kAesDecrypt, Engine::kHardware);
  p.set_engine(Algorithm::kSha1, Engine::kHardware);
  // "AES and SHA-1 (and thus also HMAC SHA-1) are provided by hardware".
  p.set_engine(Algorithm::kHmacSha1, Engine::kHardware);
  return p;
}

ArchitectureProfile ArchitectureProfile::full_hardware() {
  ArchitectureProfile p;
  p.name = "HW";
  for (auto& e : p.engines) e = Engine::kHardware;
  return p;
}

const ArchitectureProfile* ArchitectureProfile::paper_variants(
    std::size_t* count) {
  static const std::array<ArchitectureProfile, 3> kVariants = {
      pure_software(), symmetric_hardware(), full_hardware()};
  if (count) *count = kVariants.size();
  return kVariants.data();
}

}  // namespace omadrm::model
