#include "model/metered.h"

namespace omadrm::model {

namespace {
using Base = provider::PlainCryptoProvider;
}

std::size_t MeteredCryptoProvider::kdf2_blocks128(std::size_t z_len,
                                                  std::size_t out_len) {
  const std::size_t rounds = (out_len + 19) / 20;  // SHA-1 digests
  return rounds * blocks128(z_len + 4);            // Z || counter per round
}

Bytes MeteredCryptoProvider::sha1(ByteView data) {
  ledger_.charge(Algorithm::kSha1, 1, blocks128(data.size()));
  return Base::sha1(data);
}

Bytes MeteredCryptoProvider::hmac_sha1(ByteView key, ByteView data) {
  ledger_.charge(Algorithm::kHmacSha1, 1, blocks128(data.size()));
  return Base::hmac_sha1(key, data);
}

bool MeteredCryptoProvider::hmac_verify(ByteView key, ByteView data,
                                        ByteView tag) {
  ledger_.charge(Algorithm::kHmacSha1, 1, blocks128(data.size()));
  return Base::hmac_verify(key, data, tag);
}

Bytes MeteredCryptoProvider::aes_cbc_encrypt(ByteView key, ByteView iv,
                                             ByteView plaintext) {
  // PKCS#7 always adds one block when aligned.
  ledger_.charge(Algorithm::kAesEncrypt, 1, plaintext.size() / 16 + 1);
  return Base::aes_cbc_encrypt(key, iv, plaintext);
}

Bytes MeteredCryptoProvider::aes_cbc_decrypt(ByteView key, ByteView iv,
                                             ByteView ciphertext) {
  ledger_.charge(Algorithm::kAesDecrypt, 1, ciphertext.size() / 16);
  return Base::aes_cbc_decrypt(key, iv, ciphertext);
}

Bytes MeteredCryptoProvider::aes_wrap(ByteView kek, ByteView key_data) {
  // RFC 3394: 6 * n block-cipher calls for n 64-bit halves.
  ledger_.charge(Algorithm::kAesEncrypt, 1, 6 * (key_data.size() / 8));
  return Base::aes_wrap(kek, key_data);
}

std::optional<Bytes> MeteredCryptoProvider::aes_unwrap(ByteView kek,
                                                       ByteView wrapped) {
  ledger_.charge(Algorithm::kAesDecrypt, 1, 6 * (wrapped.size() / 8 - 1));
  return Base::aes_unwrap(kek, wrapped);
}

// The streaming content path executes its bulk work through cached
// contexts and reports it here; the charges mirror sha1() and
// aes_cbc_decrypt() exactly so the executed model keeps matching the
// analytic one access for access.
void MeteredCryptoProvider::charge_sha1(std::size_t data_len) {
  ledger_.charge(Algorithm::kSha1, 1, blocks128(data_len));
}

void MeteredCryptoProvider::charge_aes_cbc_decrypt(
    std::size_t ciphertext_len) {
  ledger_.charge(Algorithm::kAesDecrypt, 1, ciphertext_len / 16);
}

Bytes MeteredCryptoProvider::kdf2(ByteView z, std::size_t out_len) {
  ledger_.charge(Algorithm::kSha1, 1, kdf2_blocks128(z.size(), out_len));
  return Base::kdf2(z, out_len);
}

Bytes MeteredCryptoProvider::pss_sign(const rsa::PrivateKey& key,
                                      ByteView message, Rng& rng) {
  ledger_.charge(Algorithm::kSha1, 1,
                 blocks128(message.size()) + kPssOverheadBlocks128);
  ledger_.charge(Algorithm::kRsaPrivate, 1, 1);
  return Base::pss_sign(key, message, rng);
}

bool MeteredCryptoProvider::pss_verify(const rsa::PublicKey& key,
                                       ByteView message, ByteView signature) {
  ledger_.charge(Algorithm::kSha1, 1,
                 blocks128(message.size()) + kPssOverheadBlocks128);
  ledger_.charge(Algorithm::kRsaPublic, 1, 1);
  return Base::pss_verify(key, message, signature);
}

rsa::KemEncapsulation MeteredCryptoProvider::kem_encapsulate(
    const rsa::PublicKey& key, Rng& rng) {
  ledger_.charge(Algorithm::kRsaPublic, 1, 1);
  ledger_.charge(Algorithm::kSha1, 1,
                 kdf2_blocks128(key.byte_length(), rsa::kKekLen));
  return Base::kem_encapsulate(key, rng);
}

Bytes MeteredCryptoProvider::kem_decapsulate(const rsa::PrivateKey& key,
                                             ByteView c1) {
  ledger_.charge(Algorithm::kRsaPrivate, 1, 1);
  ledger_.charge(Algorithm::kSha1, 1,
                 kdf2_blocks128(key.byte_length(), rsa::kKekLen));
  return Base::kem_decapsulate(key, c1);
}

}  // namespace omadrm::model
