// First-order energy model (paper §3 and §5).
//
// The paper assumes "energy consumption to be directly related to
// processing performance" — i.e. energy ∝ cycles — and notes that its
// ongoing measurements suggest the hardware/software gap is *wider* for
// energy than for time (dedicated macros burn less energy per cycle than
// a general-purpose core). We expose both: the default weights reproduce
// the paper's first-order estimate; the hardware-efficiency knob lets the
// energy ablation benchmark explore the "even wider gap" hypothesis.
#pragma once

#include "model/ledger.h"

namespace omadrm::model {

struct EnergyModel {
  /// Energy per cycle, in arbitrary normalized units.
  double sw_energy_per_cycle = 1.0;
  /// Paper default: same as software (energy ∝ cycles). Set < 1 to model
  /// dedicated macros being more efficient per cycle.
  double hw_energy_per_cycle = 1.0;

  /// Total energy units of a ledger's recorded work.
  double energy_units(const CycleLedger& ledger) const {
    return sw_energy_per_cycle * ledger.cycles_by_engine(Engine::kSoftware) +
           hw_energy_per_cycle * ledger.cycles_by_engine(Engine::kHardware);
  }
};

}  // namespace omadrm::model
