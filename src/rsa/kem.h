// RSAES-KEM-KDF2-KW-AES128 — the OMA DRM 2 key transport scheme.
//
// This is exactly the paper's Figure 3: the Rights Issuer draws a random
// secret Z < n, transports it as C1 = RSAEP(Z) (1024 bits), derives
// KEK = KDF2(Z) and wraps K_MAC‖K_REK with AES-WRAP into C2. The DRM Agent
// inverts the chain with its private key: RSADP(C1) → Z → KDF2 → KEK →
// AES-UNWRAP(C2) → K_MAC‖K_REK.
//
// Note: the paper's figure labels C2 as "2*128 bit"; the real AES-WRAP
// output for a 32-byte payload is 40 bytes (integrity block included). We
// implement the real thing; the cycle model counts AES blocks from actual
// lengths, so the difference is visible (and negligible) in the model too.
#pragma once

#include <optional>

#include "common/bytes.h"
#include "common/random.h"
#include "rsa/rsa.h"

namespace omadrm::rsa {

inline constexpr std::size_t kKekLen = 16;  // AES-128 KEK

struct KemEncapsulation {
  Bytes c1;   // RSA-encrypted secret, key-length bytes
  Bytes kek;  // derived key-encryption key
};

/// RI side: draw Z, produce C1 and the derived KEK.
KemEncapsulation kem_encapsulate(const PublicKey& key, Rng& rng);

/// Agent side: recover the KEK from C1. Length errors throw; a wrong key
/// simply yields a different KEK (detected downstream by AES-UNWRAP).
Bytes kem_decapsulate(const PrivateKey& key, ByteView c1);

/// High-level wrap: C = C1 || AES-WRAP(KEK, key_material).
Bytes kem_wrap_keys(const PublicKey& key, ByteView key_material, Rng& rng);

/// High-level unwrap; std::nullopt when the AES-WRAP integrity check fails
/// (wrong private key or tampered C).
std::optional<Bytes> kem_unwrap_keys(const PrivateKey& key, ByteView c);

}  // namespace omadrm::rsa
