#include "rsa/rsa.h"

#include <mutex>

#include "bigint/montgomery.h"
#include "bigint/prime.h"
#include "common/error.h"

namespace omadrm::rsa {

using omadrm::Error;
using omadrm::ErrorKind;

PrivateKey generate_key(std::size_t bits, Rng& rng) {
  if (bits < 64 || bits % 2 != 0) {
    throw Error(ErrorKind::kRange, "generate_key: bits must be even, >=64");
  }
  const BigInt e(std::uint64_t{65537});
  const BigInt one(std::uint64_t{1});
  for (;;) {
    BigInt p = bigint::generate_prime(bits / 2, rng);
    BigInt q = bigint::generate_prime(bits / 2, rng);
    if (p == q) continue;
    if (q > p) std::swap(p, q);  // canonical order: p > q

    BigInt n = p * q;
    if (n.bit_length() != bits) continue;
    BigInt phi = (p - one) * (q - one);
    if (!(BigInt::gcd(e, phi) == one)) continue;

    PrivateKey key;
    key.n = n;
    key.e = e;
    key.d = BigInt::mod_inverse(e, phi);
    key.p = p;
    key.q = q;
    key.dp = key.d.mod(p - one);
    key.dq = key.d.mod(q - one);
    key.qinv = BigInt::mod_inverse(q, p);
    key.has_crt = true;
    return key;
  }
}

Bytes i2osp(const BigInt& x, std::size_t len) {
  if (x.is_negative()) {
    throw Error(ErrorKind::kRange, "i2osp: negative integer");
  }
  if (x.bit_length() > len * 8) {
    throw Error(ErrorKind::kRange, "i2osp: integer too large for length");
  }
  return x.to_bytes_be(len);
}

BigInt os2ip(ByteView data) { return BigInt::from_bytes_be(data); }

BigInt rsaep(const PublicKey& key, const BigInt& m) {
  if (m.is_negative() || !(m < key.n)) {
    throw Error(ErrorKind::kCrypto, "rsaep: message out of range");
  }
  // mod_exp owns the dispatch: shared (cached) Montgomery context for odd
  // moduli, generic square-and-multiply for hostile even ones.
  return BigInt::mod_exp(m, key.e, key.n);
}

namespace {

// Guards every PrivateKey's lazy CRT-context slots. One process-wide
// mutex is enough: the critical sections are pointer reads/writes, dwarfed
// by the exponentiations around them.
std::mutex& crt_slot_mutex() {
  static std::mutex m;
  return m;
}

// Per-key cached context for a secret CRT prime. Deliberately NOT the
// process-wide modulus cache: p and q must not outlive the key in global
// memory. The modulus check makes field-wise key mutation (state import)
// self-healing. Context construction happens outside the lock; a losing
// racer adopts the winner's context.
std::shared_ptr<const bigint::MontgomeryCtx> crt_prime_ctx(
    std::shared_ptr<const bigint::MontgomeryCtx>& slot, const BigInt& prime) {
  {
    std::lock_guard<std::mutex> lock(crt_slot_mutex());
    if (slot && slot->modulus() == prime) return slot;
  }
  auto ctx = std::make_shared<const bigint::MontgomeryCtx>(prime);
  std::lock_guard<std::mutex> lock(crt_slot_mutex());
  if (slot && slot->modulus() == prime) return slot;
  slot = ctx;
  return ctx;
}

}  // namespace

BigInt rsadp(const PrivateKey& key, const BigInt& c) {
  if (c.is_negative() || !(c < key.n)) {
    throw Error(ErrorKind::kCrypto, "rsadp: ciphertext out of range");
  }
  if (!key.has_crt) {
    return BigInt::mod_exp(c, key.d, key.n);
  }
  // CRT with per-prime per-key contexts: both half-size exponentiations
  // reuse their cached R^2 mod p / mod q across private-key operations.
  BigInt m1 = crt_prime_ctx(key.crt_ctx_p.ctx, key.p)->mod_exp(c.mod(key.p),
                                                               key.dp);
  BigInt m2 = crt_prime_ctx(key.crt_ctx_q.ctx, key.q)->mod_exp(c.mod(key.q),
                                                               key.dq);
  // Garner's recombination: m = m2 + q * (qinv * (m1 - m2) mod p).
  BigInt h = (key.qinv * (m1 - m2)).mod(key.p);
  return m2 + key.q * h;
}

BigInt rsasp1(const PrivateKey& key, const BigInt& m) {
  if (m.is_negative() || !(m < key.n)) {
    throw Error(ErrorKind::kCrypto, "rsasp1: message out of range");
  }
  return rsadp(key, m);
}

BigInt rsavp1(const PublicKey& key, const BigInt& s) {
  if (s.is_negative() || !(s < key.n)) {
    throw Error(ErrorKind::kCrypto, "rsavp1: signature out of range");
  }
  return rsaep(key, s);
}

}  // namespace omadrm::rsa
