#include "rsa/rsa.h"

#include "bigint/prime.h"
#include "common/error.h"

namespace omadrm::rsa {

using omadrm::Error;
using omadrm::ErrorKind;

PrivateKey generate_key(std::size_t bits, Rng& rng) {
  if (bits < 64 || bits % 2 != 0) {
    throw Error(ErrorKind::kRange, "generate_key: bits must be even, >=64");
  }
  const BigInt e(std::uint64_t{65537});
  const BigInt one(std::uint64_t{1});
  for (;;) {
    BigInt p = bigint::generate_prime(bits / 2, rng);
    BigInt q = bigint::generate_prime(bits / 2, rng);
    if (p == q) continue;
    if (q > p) std::swap(p, q);  // canonical order: p > q

    BigInt n = p * q;
    if (n.bit_length() != bits) continue;
    BigInt phi = (p - one) * (q - one);
    if (!(BigInt::gcd(e, phi) == one)) continue;

    PrivateKey key;
    key.n = n;
    key.e = e;
    key.d = BigInt::mod_inverse(e, phi);
    key.p = p;
    key.q = q;
    key.dp = key.d.mod(p - one);
    key.dq = key.d.mod(q - one);
    key.qinv = BigInt::mod_inverse(q, p);
    key.has_crt = true;
    return key;
  }
}

Bytes i2osp(const BigInt& x, std::size_t len) {
  if (x.is_negative()) {
    throw Error(ErrorKind::kRange, "i2osp: negative integer");
  }
  if (x.bit_length() > len * 8) {
    throw Error(ErrorKind::kRange, "i2osp: integer too large for length");
  }
  return x.to_bytes_be(len);
}

BigInt os2ip(ByteView data) { return BigInt::from_bytes_be(data); }

BigInt rsaep(const PublicKey& key, const BigInt& m) {
  if (m.is_negative() || !(m < key.n)) {
    throw Error(ErrorKind::kCrypto, "rsaep: message out of range");
  }
  return BigInt::mod_exp(m, key.e, key.n);
}

BigInt rsadp(const PrivateKey& key, const BigInt& c) {
  if (c.is_negative() || !(c < key.n)) {
    throw Error(ErrorKind::kCrypto, "rsadp: ciphertext out of range");
  }
  if (!key.has_crt) {
    return BigInt::mod_exp(c, key.d, key.n);
  }
  // Garner's CRT recombination: m = m2 + q * (qinv * (m1 - m2) mod p).
  BigInt m1 = BigInt::mod_exp(c.mod(key.p), key.dp, key.p);
  BigInt m2 = BigInt::mod_exp(c.mod(key.q), key.dq, key.q);
  BigInt h = (key.qinv * (m1 - m2)).mod(key.p);
  return m2 + key.q * h;
}

BigInt rsasp1(const PrivateKey& key, const BigInt& m) {
  if (m.is_negative() || !(m < key.n)) {
    throw Error(ErrorKind::kCrypto, "rsasp1: message out of range");
  }
  return rsadp(key, m);
}

BigInt rsavp1(const PublicKey& key, const BigInt& s) {
  if (s.is_negative() || !(s < key.n)) {
    throw Error(ErrorKind::kCrypto, "rsavp1: signature out of range");
  }
  return rsaep(key, s);
}

}  // namespace omadrm::rsa
