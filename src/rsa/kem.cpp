#include "rsa/kem.h"

#include "common/error.h"
#include "crypto/aes_wrap.h"
#include "crypto/kdf2.h"

namespace omadrm::rsa {

using omadrm::Error;
using omadrm::ErrorKind;

KemEncapsulation kem_encapsulate(const PublicKey& key, Rng& rng) {
  const std::size_t k = key.byte_length();
  BigInt z = BigInt::random_below(key.n, rng);
  KemEncapsulation out;
  out.c1 = i2osp(rsaep(key, z), k);
  out.kek = crypto::kdf2_sha1(i2osp(z, k), kKekLen);
  return out;
}

Bytes kem_decapsulate(const PrivateKey& key, ByteView c1) {
  const std::size_t k = key.byte_length();
  if (c1.size() != k) {
    throw Error(ErrorKind::kCrypto, "kem: C1 length != key length");
  }
  BigInt c = os2ip(c1);
  if (!(c < key.n)) {
    throw Error(ErrorKind::kCrypto, "kem: C1 out of range");
  }
  BigInt z = rsadp(key, c);
  return crypto::kdf2_sha1(i2osp(z, k), kKekLen);
}

Bytes kem_wrap_keys(const PublicKey& key, ByteView key_material, Rng& rng) {
  KemEncapsulation enc = kem_encapsulate(key, rng);
  Bytes c2 = crypto::aes_wrap(enc.kek, key_material);
  return concat({enc.c1, c2});
}

std::optional<Bytes> kem_unwrap_keys(const PrivateKey& key, ByteView c) {
  const std::size_t k = key.byte_length();
  if (c.size() < k + 24) {
    throw Error(ErrorKind::kCrypto, "kem: C too short");
  }
  Bytes kek = kem_decapsulate(key, c.subspan(0, k));
  return crypto::aes_unwrap(kek, c.subspan(k));
}

}  // namespace omadrm::rsa
