#include "rsa/pss.h"

#include "common/error.h"
#include "crypto/sha1.h"

namespace omadrm::rsa {

using crypto::Sha1;
using omadrm::Error;
using omadrm::ErrorKind;

namespace {
constexpr std::size_t kHashLen = Sha1::kDigestSize;
}

Bytes mgf1_sha1(ByteView seed, std::size_t mask_len) {
  Bytes mask;
  mask.reserve(mask_len);
  std::uint32_t counter = 0;
  while (mask.size() < mask_len) {
    Sha1 h;
    h.update(seed);
    std::uint8_t c[4];
    store_be32(counter++, c);
    h.update(ByteView(c, 4));
    Bytes block = h.finish();
    std::size_t take = std::min(block.size(), mask_len - mask.size());
    mask.insert(mask.end(), block.begin(),
                block.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return mask;
}

Bytes emsa_pss_encode(ByteView message, std::size_t em_bits, Rng& rng) {
  const std::size_t em_len = (em_bits + 7) / 8;
  if (em_len < kHashLen + kPssSaltLen + 2) {
    throw Error(ErrorKind::kCrypto, "pss: key too small for encoding");
  }
  Bytes m_hash = Sha1::hash(message);
  Bytes salt = rng.bytes(kPssSaltLen);

  // M' = 8 zero bytes || mHash || salt
  Bytes m_prime(8, 0);
  m_prime.insert(m_prime.end(), m_hash.begin(), m_hash.end());
  m_prime.insert(m_prime.end(), salt.begin(), salt.end());
  Bytes h = Sha1::hash(m_prime);

  // DB = PS || 0x01 || salt
  const std::size_t db_len = em_len - kHashLen - 1;
  Bytes db(db_len - kPssSaltLen - 1, 0);
  db.push_back(0x01);
  db.insert(db.end(), salt.begin(), salt.end());

  Bytes mask = mgf1_sha1(h, db_len);
  Bytes masked_db = xor_bytes(db, mask);
  // Clear the leftmost 8*emLen - emBits bits.
  const std::size_t excess_bits = 8 * em_len - em_bits;
  if (excess_bits > 0) {
    masked_db[0] &= static_cast<std::uint8_t>(0xff >> excess_bits);
  }

  Bytes em;
  em.reserve(em_len);
  em.insert(em.end(), masked_db.begin(), masked_db.end());
  em.insert(em.end(), h.begin(), h.end());
  em.push_back(0xbc);
  return em;
}

bool emsa_pss_verify(ByteView message, ByteView em, std::size_t em_bits) {
  const std::size_t em_len = (em_bits + 7) / 8;
  if (em.size() != em_len) return false;
  if (em_len < kHashLen + kPssSaltLen + 2) return false;
  if (em.back() != 0xbc) return false;

  const std::size_t db_len = em_len - kHashLen - 1;
  ByteView masked_db = em.subspan(0, db_len);
  ByteView h = em.subspan(db_len, kHashLen);

  const std::size_t excess_bits = 8 * em_len - em_bits;
  if (excess_bits > 0 &&
      (masked_db[0] & ~static_cast<std::uint8_t>(0xff >> excess_bits)) != 0) {
    return false;
  }

  Bytes mask = mgf1_sha1(h, db_len);
  Bytes db = xor_bytes(masked_db, mask);
  if (excess_bits > 0) {
    db[0] &= static_cast<std::uint8_t>(0xff >> excess_bits);
  }

  // DB must be zeros, then 0x01, then the salt.
  const std::size_t ps_len = db_len - kPssSaltLen - 1;
  for (std::size_t i = 0; i < ps_len; ++i) {
    if (db[i] != 0) return false;
  }
  if (db[ps_len] != 0x01) return false;
  ByteView salt = ByteView(db).subspan(ps_len + 1, kPssSaltLen);

  Bytes m_hash = Sha1::hash(message);
  Bytes m_prime(8, 0);
  m_prime.insert(m_prime.end(), m_hash.begin(), m_hash.end());
  m_prime.insert(m_prime.end(), salt.begin(), salt.end());
  Bytes h2 = Sha1::hash(m_prime);
  return ct_equal(h, h2);
}

Bytes pss_sign(const PrivateKey& key, ByteView message, Rng& rng) {
  const std::size_t mod_bits = key.n.bit_length();
  Bytes em = emsa_pss_encode(message, mod_bits - 1, rng);
  BigInt m = os2ip(em);
  BigInt s = rsasp1(key, m);
  return i2osp(s, key.byte_length());
}

bool pss_verify(const PublicKey& key, ByteView message, ByteView signature) {
  if (signature.size() != key.byte_length()) return false;
  BigInt s = os2ip(signature);
  if (!(s < key.n)) return false;
  BigInt m = rsavp1(key, s);
  const std::size_t mod_bits = key.n.bit_length();
  const std::size_t em_len = (mod_bits - 1 + 7) / 8;
  Bytes em;
  try {
    em = i2osp(m, em_len);
  } catch (const Error&) {
    return false;
  }
  return emsa_pss_verify(message, em, mod_bits - 1);
}

}  // namespace omadrm::rsa
