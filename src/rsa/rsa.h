// RSA key model and the PKCS#1 v2.1 primitives (RSAEP / RSADP / RSASP1 /
// RSAVP1) plus the I2OSP / OS2IP octet-string conversions — exactly the
// primitive set the paper lists in §2.4.5.
//
// Private-key operations use the CRT representation (p, q, dP, dQ, qInv)
// when available, which is also what the cycle-cost model assumes for the
// "RSA 1024 Private Key Op" row of Table 1.
#pragma once

#include <cstddef>
#include <memory>

#include "bigint/bigint.h"
#include "common/bytes.h"
#include "common/random.h"

namespace omadrm::bigint {
class MontgomeryCtx;
}

namespace omadrm::rsa {

using bigint::BigInt;

struct PublicKey {
  BigInt n;  // modulus
  BigInt e;  // public exponent

  /// Modulus size in bytes (k in PKCS#1 terms).
  std::size_t byte_length() const { return (n.bit_length() + 7) / 8; }
  std::size_t bit_length() const { return n.bit_length(); }
};

/// Holder for a lazily built Montgomery context of a secret CRT prime.
/// Copying deliberately yields an empty slot: the context is rebuilt on
/// first use, and never reading the source keeps key copies race-free
/// against a concurrent private-key operation populating its slots. This
/// confinement lets PrivateKey keep defaulted copy/move operations.
struct CrtCtxSlot {
  mutable std::shared_ptr<const bigint::MontgomeryCtx> ctx;

  CrtCtxSlot() = default;
  CrtCtxSlot(const CrtCtxSlot&) noexcept {}
  CrtCtxSlot& operator=(const CrtCtxSlot&) noexcept {
    ctx.reset();
    return *this;
  }
  CrtCtxSlot(CrtCtxSlot&&) noexcept = default;
  CrtCtxSlot& operator=(CrtCtxSlot&&) noexcept = default;
};

struct PrivateKey {
  BigInt n;
  BigInt e;
  BigInt d;
  // CRT components; present for generated keys.
  BigInt p, q, dp, dq, qinv;
  bool has_crt = false;

  // Lazily built Montgomery contexts for the CRT primes, kept on the key
  // instead of the process-wide modulus cache so the secret primes never
  // persist in global memory beyond the key's lifetime. rsadp validates
  // the cached modulus before use, so field-wise key replacement (e.g.
  // state import) self-heals.
  CrtCtxSlot crt_ctx_p;
  CrtCtxSlot crt_ctx_q;

  PublicKey public_key() const { return {n, e}; }
  std::size_t byte_length() const { return (n.bit_length() + 7) / 8; }
};

/// Generates an RSA key pair with an exactly `bits`-bit modulus and
/// public exponent 65537. Deterministic given the Rng.
PrivateKey generate_key(std::size_t bits, Rng& rng);

/// I2OSP: integer to big-endian octet string of exactly `len` bytes.
/// Throws kRange if the integer does not fit.
Bytes i2osp(const BigInt& x, std::size_t len);

/// OS2IP: octet string to integer.
BigInt os2ip(ByteView data);

// -- PKCS#1 v2.1 primitives (integer domain) -------------------------------

/// RSAEP: m^e mod n. Requires 0 <= m < n.
BigInt rsaep(const PublicKey& key, const BigInt& m);

/// RSADP: c^d mod n (CRT when available). Requires 0 <= c < n.
BigInt rsadp(const PrivateKey& key, const BigInt& c);

/// RSASP1: signature primitive (same math as RSADP).
BigInt rsasp1(const PrivateKey& key, const BigInt& m);

/// RSAVP1: verification primitive (same math as RSAEP).
BigInt rsavp1(const PublicKey& key, const BigInt& s);

}  // namespace omadrm::rsa
