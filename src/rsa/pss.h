// RSASSA-PSS (PKCS#1 v2.1 §8.1) with SHA-1 and MGF1-SHA1 — the signature
// scheme OMA DRM 2 mandates for ROAP messages and Rights Object signatures
// ("RSA-PSSA" in the paper's algorithm list, using RSASP1/RSAVP1).
//
// The paper approximates EMSA-PSS as "just one hash function over the
// message code"; we implement the real encoding (hash, salt, MGF1 mask,
// 0xbc trailer) — the cost model still charges it as hash + RSA primitive,
// matching the paper's accounting.
#pragma once

#include "common/bytes.h"
#include "common/random.h"
#include "rsa/rsa.h"

namespace omadrm::rsa {

inline constexpr std::size_t kPssSaltLen = 20;  // == SHA-1 digest size

/// MGF1 mask generation over SHA-1 (PKCS#1 v2.1 §B.2.1).
Bytes mgf1_sha1(ByteView seed, std::size_t mask_len);

/// EMSA-PSS-ENCODE of `message` for a key of `em_bits` (= modBits - 1).
Bytes emsa_pss_encode(ByteView message, std::size_t em_bits, Rng& rng);

/// EMSA-PSS-VERIFY; true iff `em` is a consistent encoding of `message`.
bool emsa_pss_verify(ByteView message, ByteView em, std::size_t em_bits);

/// RSASSA-PSS-SIGN: returns a signature of exactly key-length bytes.
Bytes pss_sign(const PrivateKey& key, ByteView message, Rng& rng);

/// RSASSA-PSS-VERIFY: true iff `signature` is valid for `message`.
bool pss_verify(const PublicKey& key, ByteView message, ByteView signature);

}  // namespace omadrm::rsa
