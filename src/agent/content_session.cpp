#include "agent/content_session.h"

namespace omadrm::agent {

std::shared_ptr<const crypto::Aes> AesContextCache::get(
    ByteView cek, std::string_view ro_id) {
  if (!enabled_) {
    ++stats_.misses;
    return std::make_shared<const crypto::Aes>(cek);
  }
  std::array<std::uint8_t, crypto::Sha1::kDigestSize> fp;
  crypto::Sha1 h;
  h.update(cek);
  h.finish_into(fp.data());

  // Linear scan: the cache is a handful of entries, and the fingerprint
  // compare is 20 bytes — cheaper than maintaining a side index.
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->fingerprint == fp) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it);
      return lru_.front().aes;
    }
  }

  ++stats_.misses;
  auto aes = std::make_shared<const crypto::Aes>(cek);
  lru_.push_front(Entry{fp, std::string(ro_id), aes});
  if (lru_.size() > capacity_) {
    lru_.pop_back();
    ++stats_.evictions;
  }
  return aes;
}

void AesContextCache::invalidate_ro(std::string_view ro_id) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->ro_id == ro_id) {
      it = lru_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
}

void AesContextCache::clear() {
  stats_.invalidations += lru_.size();
  lru_.clear();
}

std::size_t ContentSession::read(std::span<std::uint8_t> out) {
  if (status_ != StatusCode::kOk) return 0;
  const std::size_t n = stream_.read(out);
  produced_ += n;
  if (stream_.done() && produced_ != plaintext_size_) {
    // Valid padding that contradicts the recorded plaintext size: the
    // container is inconsistent with itself (and therefore with the hash
    // the RO bound). Same verdict the one-shot path reported.
    status_ = StatusCode::kDcfHashMismatch;
  }
  return n;
}

void ContentSession::rewind() {
  if (aes_ == nullptr) return;  // never opened
  stream_.rewind();
  produced_ = 0;
  // A failed size check is a property of the container, not of the read
  // position — it would recur, so leave the status as is.
  if (status_ == StatusCode::kDcfHashMismatch) return;
  status_ = StatusCode::kOk;
}

Bytes ContentSession::read_all() {
  Bytes out;
  if (!ok()) return out;
  out.resize(static_cast<std::size_t>(bytes_remaining()));
  const std::size_t n = read(std::span<std::uint8_t>(out.data(), out.size()));
  out.resize(n);
  if (!stream_.done()) {
    // The padding promises more plaintext than the container recorded.
    status_ = StatusCode::kDcfHashMismatch;
  }
  return out;
}

}  // namespace omadrm::agent
