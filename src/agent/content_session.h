// Streaming content consumption — the steady-state half of §2.4.4.
//
// DrmAgent::consume historically did everything per access: unwrap C2dev,
// verify the RO MAC, re-serialize and re-hash the whole DCF, rebuild the
// AES key schedule, and decrypt the entire payload into a fresh heap
// buffer. For the paper's embedded terminal the steady-state cost of DRM
// *is* this path, so it is split here into its one-time and per-chunk
// halves:
//
//   DrmAgent::open_content   the per-access trust decisions (C2dev
//                            unwrap, RO MAC, DCF-hash binding, REL
//                            check_and_consume, CEK unwrap) plus the AES
//                            key-schedule lookup in the agent's context
//                            cache — returns a ContentSession.
//   ContentSession::read     decrypts the next plaintext chunk into a
//                            caller-owned buffer through the fused CBC
//                            core: zero allocations, any chunk size,
//                            PKCS#7 handled only at the final block.
//
// A session represents ONE granted access (one check_and_consume): the
// caller may read, rewind, and re-read freely within it — restarting the
// same playback — but a new access requires a new open_content.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aes.h"
#include "crypto/modes.h"
#include "crypto/sha1.h"
#include "rel/rights.h"

namespace omadrm::agent {

class DrmAgent;

struct AesCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;
};

/// LRU cache of AES key schedules keyed by a CEK fingerprint, the
/// symmetric sibling of PR 1's Montgomery-context and chain-verdict
/// caches: the CEK of an installed RO does not change between accesses,
/// so neither should the expanded key schedule (nor, on AES-NI hosts, the
/// derived hardware schedules). Entries are tagged with the owning RO id
/// and dropped when that RO is replaced or uninstalled; the key is
/// SHA-1(CEK), so the cache never stores raw key material in its index.
class AesContextCache {
 public:
  explicit AesContextCache(std::size_t capacity = 16) : capacity_(capacity) {}

  /// Returns the cached schedule for `cek`, building and inserting it on
  /// a miss. The shared_ptr keeps a session's schedule alive across
  /// eviction and invalidation.
  std::shared_ptr<const crypto::Aes> get(ByteView cek, std::string_view ro_id);

  /// Drops every entry tagged with `ro_id` (RO replaced or uninstalled).
  void invalidate_ro(std::string_view ro_id);
  void clear();

  /// Disabled: every get() builds a fresh schedule (for benchmarks).
  void set_enabled(bool enabled) { enabled_ = enabled; }

  const AesCacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = AesCacheStats{}; }
  std::size_t size() const { return lru_.size(); }

 private:
  struct Entry {
    std::array<std::uint8_t, crypto::Sha1::kDigestSize> fingerprint;
    std::string ro_id;
    std::shared_ptr<const crypto::Aes> aes;
  };

  std::list<Entry> lru_;  // front = most recently used
  std::size_t capacity_;
  bool enabled_ = true;
  AesCacheStats stats_;
};

/// One granted content access, created by DrmAgent::open_content.
///
/// The session borrows the DCF's encrypted payload (and pins its cached
/// AES schedule): the container object or wire buffer it was opened over
/// must outlive it. When open_content denies, the session is returned
/// with ok() == false and the same status/decision consume() would have
/// reported; read() then produces nothing.
class ContentSession {
 public:
  ContentSession() = default;  // not ok(); kNotInstalled

  bool ok() const { return status_ == StatusCode::kOk; }
  StatusCode status() const { return status_; }
  rel::Decision decision() const { return decision_; }
  /// The RO that granted (or last denied) the access.
  const std::string& ro_id() const { return ro_id_; }

  std::uint64_t plaintext_size() const { return plaintext_size_; }
  std::uint64_t bytes_read() const { return produced_; }
  std::uint64_t bytes_remaining() const {
    return plaintext_size_ > produced_ ? plaintext_size_ - produced_ : 0;
  }

  /// Decrypts up to out.size() plaintext bytes into the caller's buffer;
  /// returns the byte count (0 once drained or when !ok()). Zero heap
  /// allocations. `out` must not alias the container's encrypted payload
  /// (CBC decryption chains off ciphertext bytes it has already passed).
  /// Throws omadrm::Error(kFormat) on inconsistent final padding; a
  /// container whose decrypted size contradicts its recorded plaintext
  /// size flips status() to kDcfHashMismatch instead (the binding hash
  /// normally catches such tampering long before here).
  std::size_t read(std::span<std::uint8_t> out);

  /// Restarts the granted access from the first byte — same playback,
  /// no new REL consumption, no rights re-checks, no allocation.
  ///
  /// Replay-vs-rollback contract: rewind() replays the ONE access this
  /// session's check_and_consume granted, and that burn was committed to
  /// the agent's bound store BEFORE open_content returned this session.
  /// A session is therefore pure RAM state riding on an already-durable
  /// grant: killing the process mid-session (rewound or not) and
  /// reloading the agent from its store can never resurrect the grant as
  /// un-burned, and a reloaded agent never re-creates sessions — a new
  /// access needs a new open_content, which burns (and commits) again.
  /// Pinned by StoreBacked.RewindNeverSurvivesReloadAsUnburnedGrant in
  /// tests/test_store.cpp.
  void rewind();

  /// Drains the remainder into one owned buffer (the consume() path).
  Bytes read_all();

 private:
  friend class DrmAgent;

  StatusCode status_ = StatusCode::kNotInstalled;
  rel::Decision decision_ = rel::Decision::kNoSuchPermission;
  std::string ro_id_;
  std::shared_ptr<const crypto::Aes> aes_;  // pins the cached schedule
  crypto::CbcDecryptStream stream_;
  std::uint64_t plaintext_size_ = 0;
  std::uint64_t produced_ = 0;
};

}  // namespace omadrm::agent
