// DRM Agent — the trusted logical entity in the user's terminal
// (paper §2.1) and the component whose cryptographic workload the paper
// models. All four consumption-process phases are implemented:
//
//   Registration  (§2.4.1): 4-pass ROAP, RI certificate + OCSP + message
//                 signature verification, RI Context persistence.
//   Acquisition   (§2.4.2): signed RORequest / verified ROResponse.
//   Installation  (§2.4.3): RSADP(C1) → KDF2 → AES-UNWRAP(C2) →
//                 MAC check → re-wrap under the device key K_DEV (C2dev),
//                 replacing the PKI protection with a symmetric one.
//   Consumption   (§2.4.4): per access — unwrap C2dev, verify the RO MAC,
//                 verify the DCF hash, then decrypt the content.
//
// The agent never talks to a Rights Issuer object. Every ROAP exchange
// flows through a roap::Transport as serialized roap::Envelope documents;
// the per-protocol state machines live in agent/sessions.h
// (RegistrationSession / AcquisitionSession / DomainSession), which own
// the pending nonces for exactly one handshake each. The conveniences
// below (`register_with`, `acquire_ro`, ...) are thin wrappers that run
// one session to completion over a transport.
//
// Every cryptographic operation goes through the injected CryptoProvider,
// which is how the cycle-cost model observes exactly the terminal-side
// work the paper charges.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "agent/content_session.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "dcf/dcf.h"
#include "dcf/dcf_reader.h"
#include "pki/authority.h"
#include "pki/chain.h"
#include "provider/provider.h"
#include "rel/rights.h"
#include "roap/envelope.h"
#include "roap/messages.h"
#include "roap/retry.h"
#include "roap/transport.h"
#include "store/state_store.h"

namespace omadrm::agent {

/// The agent's outcome codes are the unified stack-wide code space; the
/// historical name is kept so call sites read naturally
/// (AgentStatus::kMacMismatch). See common/status.h.
using AgentStatus = omadrm::StatusCode;
using omadrm::to_string;

/// The trusted-relationship record the agent persists after registration
/// (paper: "the DRM Agent saves information on the relationship with this
/// specific RI in the RI Context").
struct RiContext {
  std::string ri_id;
  std::string ri_url;
  /// Full RI certificate chain, leaf first; any entries beyond the first
  /// are intermediate CA certificates. Never empty once established.
  std::vector<pki::Certificate> ri_chain;

  /// The RI's own (leaf) certificate — the signer of ROAP responses.
  const pki::Certificate& ri_certificate() const { return ri_chain.front(); }
  /// Handle to the cached chain verification — the paper's "the Device is
  /// not required to verify that Rights Issuer's certificate chain again".
  /// Refreshed on every RI interaction via the agent's ChainVerifier.
  std::shared_ptr<const pki::ChainVerdict> verified_chain;
  std::uint64_t established_at = 0;
};

/// An installed Rights Object: the delivered RO plus the device-bound
/// re-wrapped keys and the stateful constraint enforcer.
struct InstalledRo {
  roap::ProtectedRo ro;
  Bytes c2dev;  // AES-WRAP(K_DEV, K_MAC || K_REK)
  rel::RightsEnforcer enforcer;

  InstalledRo(roap::ProtectedRo protected_ro, Bytes c2dev_bytes)
      : ro(std::move(protected_ro)),
        c2dev(std::move(c2dev_bytes)),
        enforcer(ro.rights) {}
};

/// Result of a consumption attempt.
struct ConsumeResult {
  AgentStatus status = AgentStatus::kNotInstalled;
  rel::Decision decision = rel::Decision::kNoSuchPermission;
  Bytes content;  // plaintext on success
  std::string ro_id;  // the RO that granted (or last denied) access
};

class RegistrationSession;
class AcquisitionSession;
class DomainSession;

class DrmAgent {
 public:
  /// Creates an agent with a fresh RSA key pair and device key K_DEV.
  /// `trust_root` is the baked-in CA root certificate.
  DrmAgent(std::string device_id, pki::Certificate trust_root,
           provider::CryptoProvider& crypto, Rng& rng,
           std::size_t key_bits = 1024);

  const std::string& device_id() const { return device_id_; }
  rsa::PublicKey public_key() const { return key_.public_key(); }

  /// Installs the certificate a CA issued over public_key().
  void provision(pki::Certificate device_certificate);
  bool is_provisioned() const { return !certificate_der_.empty(); }
  const pki::Certificate& certificate() const;

  // -- Phase 1: Registration ------------------------------------------------
  /// Runs one 4-pass registration over the transport (a thin wrapper
  /// around RegistrationSession).
  Result<> register_with(roap::Transport& transport, std::uint64_t now);
  /// Fault-tolerant registration: passes are retried with backoff under
  /// `policy` (paced by this agent's rng on `clock`, or a deterministic
  /// virtual clock when null) and an expired RI session restarts the
  /// handshake from DeviceHello with fresh nonces. See
  /// RegistrationSession::run(transport, policy).
  Result<> register_with(roap::Transport& transport, std::uint64_t now,
                         const roap::RetryPolicy& policy,
                         roap::RetryClock* clock = nullptr);
  bool has_ri_context(const std::string& ri_id) const;
  const RiContext* ri_context(const std::string& ri_id) const;

  // -- Phase 2: Acquisition ---------------------------------------------------
  /// Runs one 2-pass RO acquisition over the transport (wrapper around
  /// AcquisitionSession). Requires an established RI context for `ri_id`.
  Result<roap::ProtectedRo> acquire_ro(roap::Transport& transport,
                                       const std::string& ri_id,
                                       const std::string& ro_id,
                                       std::uint64_t now);
  /// Fault-tolerant acquisition (retry semantics as register_with).
  Result<roap::ProtectedRo> acquire_ro(roap::Transport& transport,
                                       const std::string& ri_id,
                                       const std::string& ro_id,
                                       std::uint64_t now,
                                       const roap::RetryPolicy& policy,
                                       roap::RetryClock* clock = nullptr);

  // -- Phase 3: Installation -------------------------------------------------
  AgentStatus install_ro(const roap::ProtectedRo& ro, std::uint64_t now);
  const InstalledRo* installed_ro(const std::string& ro_id) const;
  std::size_t installed_count() const { return installed_.size(); }

  // -- Phase 4: Consumption ---------------------------------------------------
  /// One-shot access: open + drain into an owned buffer. A thin wrapper
  /// over open_content for callers that want the whole plaintext at once.
  ConsumeResult consume(const dcf::Dcf& dcf, rel::PermissionType permission,
                        std::uint64_t now, std::uint64_t duration_secs = 0);

  /// Streaming access (§2.4.4 split into one-time and per-chunk halves):
  /// performs the per-access trust decisions — C2dev unwrap, RO MAC, DCF
  /// hash binding, REL check_and_consume, CEK unwrap, AES key-schedule
  /// lookup in the context cache — and returns a session whose read()
  /// decrypts chunks into caller-owned buffers with zero allocations.
  /// On denial the session carries the status/decision consume() would
  /// have reported. The session borrows the container's payload bytes.
  ContentSession open_content(const dcf::Dcf& dcf,
                              rel::PermissionType permission,
                              std::uint64_t now,
                              std::uint64_t duration_secs = 0);
  /// The session borrows the container's payload — a temporary Dcf would
  /// leave it dangling before the first read().
  ContentSession open_content(dcf::Dcf&& dcf, rel::PermissionType permission,
                              std::uint64_t now,
                              std::uint64_t duration_secs = 0) = delete;
  /// Same, over a zero-copy reader: nothing is re-serialized or re-hashed
  /// (the reader computed the binding hash during its single parse pass).
  ContentSession open_content(const dcf::DcfReader& dcf,
                              rel::PermissionType permission,
                              std::uint64_t now,
                              std::uint64_t duration_secs = 0);

  /// Reacts to an RO-acquisition trigger pushed by the RI: joins the
  /// advertised domain first when needed, then acquires the RO. The
  /// trigger itself is untrusted — every security property comes from the
  /// triggered ROAP exchange.
  Result<roap::ProtectedRo> handle_trigger(
      roap::Transport& transport, const roap::RoAcquisitionTrigger& trigger,
      std::uint64_t now);
  /// Fault-tolerant trigger handling: the join (when needed) and the
  /// acquisition each run under `policy`.
  Result<roap::ProtectedRo> handle_trigger(
      roap::Transport& transport, const roap::RoAcquisitionTrigger& trigger,
      std::uint64_t now, const roap::RetryPolicy& policy,
      roap::RetryClock* clock = nullptr);

  // -- Domains ---------------------------------------------------------------
  Result<> join_domain(roap::Transport& transport, const std::string& ri_id,
                       const std::string& domain_id, std::uint64_t now);
  /// Leaves a domain: discards K_D and uninstalls that domain's ROs.
  Result<> leave_domain(roap::Transport& transport, const std::string& ri_id,
                        const std::string& domain_id, std::uint64_t now);
  /// Fault-tolerant domain membership changes (retry semantics as
  /// register_with).
  Result<> join_domain(roap::Transport& transport, const std::string& ri_id,
                       const std::string& domain_id, std::uint64_t now,
                       const roap::RetryPolicy& policy,
                       roap::RetryClock* clock = nullptr);
  Result<> leave_domain(roap::Transport& transport, const std::string& ri_id,
                        const std::string& domain_id, std::uint64_t now,
                        const roap::RetryPolicy& policy,
                        roap::RetryClock* clock = nullptr);
  bool has_domain_key(const std::string& domain_id) const;
  /// Generation of the held domain key (nullopt if not a member).
  std::optional<std::uint32_t> domain_generation(
      const std::string& domain_id) const;

  // -- Persistence -------------------------------------------------------------
  // The agent's durable state is a set of store::Record units — identity
  // ("id"), RI contexts ("ri/<id>"), domain keys ("dom/<id>"), installed
  // ROs ("ro/<id>"), and per-RO constraint state ("st/<id>"). With a
  // bound StateStore every mutation commits through it *before* the
  // mutating call reports success; most critically, a stateful
  // check_and_consume burn is durable before open_content returns its
  // session, so a crash (or deliberate kill) at any point can never
  // refund a delivered grant. export_state/import_state are thin
  // wrappers over the same record set.

  /// Binds the agent to a durable store. When the store already holds an
  /// agent image (an "id" record) that image REPLACES this agent's state
  /// — the reboot path; K_DEV itself is never in the store (it seals it:
  /// construct the backend with derive_storage_key(device_key())). An
  /// empty store is seeded with the agent's current state. Fails closed
  /// (kStoreCorrupt / kStoreSealBroken / kStoreRollback / kStoreFailure)
  /// without binding.
  Result<> bind_store(store::StateStore& s);
  store::StateStore* bound_store() const { return store_; }

  /// "Reboot" entry point: reconstructs an agent whose entire persistent
  /// state lives in `s`, without generating a throwaway RSA key. `kdev`
  /// is the hardware-held device key (the one secret assumed to live in
  /// tamper-resistant storage); the store must have been sealed under a
  /// key derived from it. Fails with kNotProvisioned when the store holds
  /// no agent identity.
  static Result<DrmAgent> from_store(store::StateStore& s, Bytes kdev,
                                     pki::Certificate trust_root,
                                     provider::CryptoProvider& crypto,
                                     Rng& rng);

  /// The device key K_DEV — the root that seals installed ROs (C2dev) and
  /// the bound store. Models the key a real terminal keeps in hardware
  /// (which is why it is exposed: the reboot path needs to hand it back).
  const Bytes& device_key() const { return kdev_; }

  /// Serializes the agent's full persistent state — device RSA key, K_DEV,
  /// certificate, RI contexts, installed ROs (with consumption state), and
  /// domain keys — into an opaque blob: K_DEV plus the same records a
  /// bound store holds. The OMA standard leaves storage to the CA's
  /// robustness rules; this models the secure-storage image a real
  /// terminal keeps across power cycles (it contains key material and
  /// MUST live in protected memory). In-flight sessions are deliberately
  /// not part of the image: their nonces die with the session objects.
  Bytes export_state() const;
  /// Restores a blob produced by export_state(), replacing this agent's
  /// identity and state (a reboot of the same physical device). When a
  /// store is bound the imported image is committed through it as a full
  /// replacement. Throws omadrm::Error(kFormat) on malformed input.
  void import_state(ByteView blob);

  /// Remaining uses for a count-constrained permission of an installed RO.
  std::optional<std::uint32_t> remaining_count(
      const std::string& ro_id, rel::PermissionType permission) const;

  /// The RI-chain verification cache. RSA work routed through it is
  /// metered via this agent's CryptoProvider; cache hits charge nothing.
  /// Exposed for benchmarks/tests (stats, enable/disable, invalidation).
  pki::ChainVerifier& chain_verifier() { return chain_verifier_; }

  /// The CEK → AES-key-schedule cache used by open_content. Entries die
  /// with their RO (replacement, uninstall, state import). Exposed for
  /// benchmarks/tests (stats, enable/disable).
  AesContextCache& aes_context_cache() { return aes_cache_; }

 private:
  // The session state machines drive the build/process halves below and
  // own all pending-handshake state (nonces, session ids). Destroying an
  // abandoned session leaves no residue in the agent.
  friend class RegistrationSession;
  friend class AcquisitionSession;
  friend class DomainSession;

  struct PendingRegistration {
    std::string session_id;
    Bytes device_nonce;
    Bytes ocsp_nonce;
  };

  // Registration halves.
  roap::DeviceHello make_device_hello(PendingRegistration& pending);
  roap::RegistrationRequest make_registration_request(
      const roap::RiHello& ri_hello, PendingRegistration& pending);
  Result<> accept_registration_response(
      const roap::RegistrationResponse& response,
      const PendingRegistration& pending, std::uint64_t now);

  // Acquisition halves.
  roap::RoRequest make_ro_request(const std::string& ri_id,
                                  const std::string& ro_id,
                                  Bytes& device_nonce);
  Result<roap::ProtectedRo> accept_ro_response(
      const roap::RoResponse& response, const std::string& ri_id,
      ByteView expected_nonce, std::uint64_t now);

  // Domain halves.
  roap::JoinDomainRequest make_join_domain_request(const std::string& ri_id,
                                                   const std::string& domain_id,
                                                   Bytes& device_nonce);
  Result<> accept_join_domain_response(
      const roap::JoinDomainResponse& response, const std::string& ri_id,
      const std::string& domain_id, ByteView expected_nonce);
  roap::LeaveDomainRequest make_leave_domain_request(
      const std::string& ri_id, const std::string& domain_id,
      Bytes& device_nonce);
  Result<> accept_leave_domain_response(
      const roap::LeaveDomainResponse& response, const std::string& ri_id,
      const std::string& domain_id, ByteView expected_nonce);

  /// The shared §2.4.4 access path behind both open_content overloads:
  /// `container_bytes` is the serialized container size (for the cost
  /// model's per-access hashing charge), `dcf_hash` the precomputed
  /// container hash checked against the RO binding.
  ContentSession open_content_impl(std::string_view content_id,
                                   ByteView dcf_hash,
                                   std::size_t container_bytes, ByteView iv,
                                   ByteView payload,
                                   std::uint64_t plaintext_size,
                                   rel::PermissionType permission,
                                   std::uint64_t now,
                                   std::uint64_t duration_secs);

  /// Re-checks an established RI context through the verdict cache — the
  /// "verify prior to any interaction" rule at O(1) amortized cost.
  Result<> revalidate_context(RiContext& ctx, std::uint64_t now);

  // -- Durable-state record units (shared by store commits and the
  // export/import blob, so the two can never drift) ------------------------
  struct FromStoreTag {};
  DrmAgent(FromStoreTag, pki::Certificate trust_root,
           provider::CryptoProvider& crypto, Rng& rng, Bytes kdev);

  Bytes encode_identity() const;
  static Bytes encode_ri_context(const RiContext& ctx);
  static Bytes encode_domain_key(const std::string& domain_id,
                                 const std::pair<Bytes, std::uint32_t>& entry);
  static Bytes encode_installed_ro(const roap::ProtectedRo& ro,
                                   const Bytes& c2dev);
  static Bytes encode_enforcer_state(const rel::RightsEnforcer& enforcer);

  /// The full record set a store snapshot (or export blob) carries.
  std::vector<store::Record> render_records() const;
  /// One fully parsed (not yet adopted) agent image; parsing is
  /// separated from adoption so an image can be validated — and
  /// committed — before any live state changes.
  struct ParsedState;
  /// Throws omadrm::Error(kFormat) on any malformed record.
  static ParsedState parse_records(const std::vector<store::Record>& records);
  /// Replaces the live state (identity included, K_DEV excluded) in one
  /// step and drops the caches that belonged to the previous identity.
  void adopt(ParsedState&& parsed);
  /// parse_records + adopt. Throws omadrm::Error(kFormat) on malformed
  /// records, leaving the live state untouched.
  void load_from_records(const std::vector<store::Record>& records);
  Result<> bind_store_impl(store::StateStore& s, bool require_identity);

  /// Full chain validation (field checks + one metered RSAVP1 per chain
  /// link) through the verdict cache, so the cost model sees exactly the
  /// RSA public-key operations the paper charges for certificate
  /// verification — and sees none of them on a cache hit.
  std::shared_ptr<const pki::ChainVerdict> verify_chain_metered(
      const std::vector<pki::Certificate>& chain, std::uint64_t now);
  AgentStatus verify_ocsp_metered(const pki::OcspResponse& ocsp,
                                  const bigint::BigInt& expected_serial,
                                  ByteView expected_nonce, std::uint64_t now);

  std::string device_id_;
  pki::Certificate trust_root_;
  provider::CryptoProvider& crypto_;
  Rng& rng_;
  rsa::PrivateKey key_;
  Bytes kdev_;  // device-generated key replacing PKI protection at install
  Bytes certificate_der_;
  pki::Certificate certificate_;
  pki::ChainVerifier chain_verifier_;

  AesContextCache aes_cache_;

  /// Durable secure storage; mutations commit through it before they are
  /// acknowledged. Null when unbound (RAM-only agent, the historical
  /// behaviour).
  store::StateStore* store_ = nullptr;

  std::map<std::string, RiContext> ri_contexts_;        // by ri_id
  std::map<std::string, InstalledRo> installed_;        // by ro_id
  // cid -> ro ids; heterogeneous lookup so the zero-copy reader's
  // string_view content id needs no temporary std::string.
  std::map<std::string, std::vector<std::string>, std::less<>> by_content_;
  std::map<std::string, std::pair<Bytes, std::uint32_t>> domain_keys_;
};

/// Maximum accepted OCSP response age (seconds).
inline constexpr std::uint64_t kMaxOcspAge = 7 * 24 * 3600;

}  // namespace omadrm::agent
