#include "agent/sessions.h"

#include <optional>

#include "common/error.h"

namespace omadrm::agent {

using omadrm::Error;
using omadrm::ErrorKind;
using omadrm::StatusCode;
using roap::Envelope;
using roap::MessageType;

namespace {

/// Maps a transport-boundary exception to a Result failure code, or
/// nullopt when the exception is not a wire-level condition (those are
/// genuine bugs and must keep unwinding).
std::optional<StatusCode> transport_status(const Error& e) {
  switch (e.kind()) {
    case ErrorKind::kTransport: return StatusCode::kTransportFailure;
    case ErrorKind::kBusy: return StatusCode::kServerBusy;
    case ErrorKind::kFormat: return StatusCode::kMalformedMessage;
    case ErrorKind::kTimeout: return StatusCode::kTimeout;
    case ErrorKind::kExhausted: return StatusCode::kRetriesExhausted;
    default: return std::nullopt;
  }
}

/// One transport exchange with wire-level failures folded into the
/// Result. Non-wire exceptions propagate.
Result<Envelope> exchange(roap::Transport& transport,
                          const Envelope& request) {
  try {
    return Result<Envelope>(transport.request(request));
  } catch (const Error& e) {
    if (auto code = transport_status(e)) {
      return Result<Envelope>(*code, e.what());
    }
    throw;
  }
}

/// Decodes an incoming envelope as Msg, classifying the two expected
/// peer failures: wrong message type and malformed content.
template <typename Msg>
Result<Msg> open_expected(const Envelope& envelope) {
  if (envelope.type() != roap::MessageTraits<Msg>::kType) {
    return Result<Msg>(
        StatusCode::kUnexpectedMessage,
        std::string("awaiting ") +
            roap::to_string(roap::MessageTraits<Msg>::kType) + ", got " +
            roap::to_string(envelope.type()));
  }
  try {
    return Result<Msg>(envelope.open<Msg>());
  } catch (const Error& e) {
    return Result<Msg>(StatusCode::kMalformedMessage, e.what());
  }
}

/// True when retrying cannot change the outcome — the shared taxonomy of
/// roap::RetryPolicy. Failure sites use this to decide between parking
/// the session (kFailed) and leaving it re-drivable.
bool terminal(StatusCode code) {
  return roap::RetryPolicy::classify(code) == roap::FaultClass::kTerminal;
}

/// Drives one request/response pass under a retry policy: send the SAME
/// request envelope, classify the outcome through `conclude`, and retry
/// retriable failures with backoff until the attempt budget or the
/// deadline (measured from `start_ms` on `clock`, shared across a
/// session's passes) runs out. `conclude` must be re-invokable — the
/// session halves guarantee that by staying in their awaiting state on
/// retriable outcomes.
template <typename T, typename ConcludeFn>
Result<T> drive_pass(roap::Transport& transport, const Envelope& request_env,
                     const roap::RetryPolicy& policy, Rng& rng,
                     roap::RetryClock& clock, std::uint64_t start_ms,
                     ConcludeFn&& conclude) {
  std::string last;
  for (std::size_t attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    if (policy.deadline_ms != 0 &&
        clock.now_ms() - start_ms >= policy.deadline_ms) {
      return Result<T>(
          StatusCode::kTimeout,
          "retry deadline exceeded after " + std::to_string(attempt - 1) +
              " attempts" + (last.empty() ? "" : "; last: " + last));
    }
    if (attempt > 1) clock.sleep_ms(policy.backoff_ms(attempt - 1, rng));
    Result<Envelope> response = exchange(transport, request_env);
    Result<T> out =
        response.ok() ? conclude(*response) : propagate<T>(response);
    if (out.ok() || terminal(out.code())) return out;
    last = out.describe();
  }
  return Result<T>(StatusCode::kRetriesExhausted,
                   "gave up after " + std::to_string(policy.max_attempts) +
                       " attempts; last: " + last);
}

}  // namespace

// ---------------------------------------------------------------------------
// RegistrationSession
// ---------------------------------------------------------------------------

RegistrationSession::RegistrationSession(DrmAgent& agent, std::uint64_t now)
    : agent_(agent), now_(now) {}

Result<Envelope> RegistrationSession::hello() {
  if (state_ != State::kStart) {
    throw Error(ErrorKind::kProtocol,
                "registration session: hello() after the handshake started");
  }
  if (!agent_.is_provisioned()) {
    state_ = State::kFailed;
    return Result<Envelope>(StatusCode::kNotProvisioned,
                            "no device certificate installed");
  }
  Envelope out = Envelope::wrap(agent_.make_device_hello(pending_));
  state_ = State::kAwaitRiHello;
  return out;
}

Result<Envelope> RegistrationSession::request(const Envelope& ri_hello) {
  if (state_ != State::kAwaitRiHello) {
    throw Error(ErrorKind::kProtocol,
                "registration session: request() out of order");
  }
  Result<roap::RiHello> msg = open_expected<roap::RiHello>(ri_hello);
  if (!msg.ok()) {
    // A damaged or stale delivery is retriable: stay in kAwaitRiHello so
    // the same DeviceHello can be answered again.
    if (terminal(msg.code())) state_ = State::kFailed;
    return propagate<Envelope>(msg);
  }
  return request(*msg);
}

Result<Envelope> RegistrationSession::request(const roap::RiHello& ri_hello) {
  if (state_ != State::kAwaitRiHello) {
    throw Error(ErrorKind::kProtocol,
                "registration session: request() out of order");
  }
  if (ri_hello.status != roap::Status::kSuccess) {
    // kStoreFailure (degraded RI) is retriable — keep awaiting so the
    // hello can be resent once the RI's store recovers.
    const StatusCode code = roap::status_code(ri_hello.status);
    if (terminal(code)) state_ = State::kFailed;
    return Result<Envelope>(
        code, std::string("RI reported ") + roap::to_string(ri_hello.status) +
                  " in RIHello");
  }
  Envelope out =
      Envelope::wrap(agent_.make_registration_request(ri_hello, pending_));
  state_ = State::kAwaitResponse;
  return out;
}

Result<> RegistrationSession::conclude(const Envelope& response) {
  if (state_ != State::kAwaitResponse) {
    throw Error(ErrorKind::kProtocol,
                "registration session: conclude() out of order");
  }
  Result<roap::RegistrationResponse> msg =
      open_expected<roap::RegistrationResponse>(response);
  if (!msg.ok()) {
    if (terminal(msg.code())) state_ = State::kFailed;
    return propagate<void>(msg);
  }
  return conclude(*msg);
}

Result<> RegistrationSession::conclude(
    const roap::RegistrationResponse& response) {
  if (state_ != State::kAwaitResponse) {
    throw Error(ErrorKind::kProtocol,
                "registration session: conclude() out of order");
  }
  Result<> out = agent_.accept_registration_response(response, pending_, now_);
  // accept_* is pure until its commit-then-apply tail, so a retriable
  // verification failure (corrupt / replayed response, agent-side store
  // refusal) leaves the session re-drivable with the same request.
  state_ = out.ok() ? State::kComplete
                    : (terminal(out.code()) ? State::kFailed
                                            : State::kAwaitResponse);
  return out;
}

void RegistrationSession::reset() {
  pending_ = DrmAgent::PendingRegistration{};
  state_ = State::kStart;
}

Result<> RegistrationSession::run(roap::Transport& transport) {
  Result<Envelope> hello_env = hello();
  if (!hello_env.ok()) return propagate<void>(hello_env);

  Result<Envelope> ri_hello = exchange(transport, *hello_env);
  if (!ri_hello.ok()) {
    state_ = State::kFailed;
    return propagate<void>(ri_hello);
  }

  Result<Envelope> request_env = request(*ri_hello);
  if (!request_env.ok()) {
    state_ = State::kFailed;  // single-shot semantics: any failure parks
    return propagate<void>(request_env);
  }

  Result<Envelope> response = exchange(transport, *request_env);
  if (!response.ok()) {
    state_ = State::kFailed;
    return propagate<void>(response);
  }
  Result<> out = conclude(*response);
  if (!out.ok()) state_ = State::kFailed;
  return out;
}

Result<> RegistrationSession::run(roap::Transport& transport,
                                  const roap::RetryPolicy& policy, Rng& rng,
                                  roap::RetryClock* clock) {
  roap::VirtualRetryClock owned;
  roap::RetryClock& clk = clock != nullptr ? *clock : owned;
  const std::uint64_t start = clk.now_ms();

  Result<> out(StatusCode::kRetriesExhausted, "never attempted");
  for (std::size_t round = 0; round <= policy.max_restarts; ++round) {
    if (round > 0) reset();  // restart from DeviceHello, fresh nonces

    Result<Envelope> hello_env = hello();
    if (!hello_env.ok()) return propagate<void>(hello_env);

    // Pass 1+2: DeviceHello → RiHello. A retriable outcome resends the
    // SAME hello; the RI's replay cache answers exact duplicates with
    // the same session instead of minting a new one per resend.
    Result<Envelope> request_env = drive_pass<Envelope>(
        transport, *hello_env, policy, rng, clk, start,
        [this](const Envelope& ri_hello) { return request(ri_hello); });
    if (!request_env.ok()) {
      if (terminal(request_env.code())) state_ = State::kFailed;
      return propagate<void>(request_env);
    }

    // Pass 3+4: RegistrationRequest → RegistrationResponse.
    out = drive_pass<void>(
        transport, *request_env, policy, rng, clk, start,
        [this](const Envelope& response) -> Result<void> {
          Result<> done = conclude(response);
          return done;
        });
    if (out.code() != StatusCode::kSessionExpired) break;
    // The RI garbage-collected our pending session while we retried —
    // the one terminal-for-the-pass outcome that is recoverable for the
    // SESSION: restart the whole handshake with fresh nonces.
  }
  if (!out.ok() && terminal(out.code())) state_ = State::kFailed;
  return out;
}

// ---------------------------------------------------------------------------
// AcquisitionSession
// ---------------------------------------------------------------------------

AcquisitionSession::AcquisitionSession(DrmAgent& agent, std::string ri_id,
                                       std::string ro_id, std::uint64_t now)
    : agent_(agent),
      ri_id_(std::move(ri_id)),
      ro_id_(std::move(ro_id)),
      now_(now) {}

Result<Envelope> AcquisitionSession::request() {
  if (state_ != State::kStart) {
    throw Error(ErrorKind::kProtocol,
                "acquisition session: request() out of order");
  }
  // "Existence, integrity and validity [of the RI Context] must be
  // verified prior to any future interaction with the RI" (§2.4.1). The
  // full chain walk runs through the verdict cache, so right after
  // registration this is an O(1) lookup with zero RSA operations — the
  // amortization the paper's RI-context caching argument calls for.
  auto ctx = agent_.ri_contexts_.find(ri_id_);
  if (ctx == agent_.ri_contexts_.end()) {
    state_ = State::kFailed;
    return Result<Envelope>(StatusCode::kNoRiContext,
                            "no RI context for " + ri_id_);
  }
  Result<> valid = agent_.revalidate_context(ctx->second, now_);
  if (!valid.ok()) {
    state_ = State::kFailed;
    return propagate<Envelope>(valid);
  }
  Envelope out = Envelope::wrap(
      agent_.make_ro_request(ri_id_, ro_id_, device_nonce_));
  state_ = State::kAwaitResponse;
  return out;
}

Result<roap::ProtectedRo> AcquisitionSession::conclude(
    const Envelope& response) {
  if (state_ != State::kAwaitResponse) {
    throw Error(ErrorKind::kProtocol,
                "acquisition session: conclude() out of order");
  }
  Result<roap::RoResponse> msg = open_expected<roap::RoResponse>(response);
  if (!msg.ok()) {
    if (terminal(msg.code())) state_ = State::kFailed;
    return propagate<roap::ProtectedRo>(msg);
  }
  return conclude(*msg);
}

Result<roap::ProtectedRo> AcquisitionSession::conclude(
    const roap::RoResponse& response) {
  if (state_ != State::kAwaitResponse) {
    throw Error(ErrorKind::kProtocol,
                "acquisition session: conclude() out of order");
  }
  Result<roap::ProtectedRo> out =
      agent_.accept_ro_response(response, ri_id_, device_nonce_, now_);
  state_ = out.ok() ? State::kComplete
                    : (terminal(out.code()) ? State::kFailed
                                            : State::kAwaitResponse);
  return out;
}

Result<roap::ProtectedRo> AcquisitionSession::run(roap::Transport& transport) {
  Result<Envelope> request_env = request();
  if (!request_env.ok()) return propagate<roap::ProtectedRo>(request_env);

  Result<Envelope> response = exchange(transport, *request_env);
  if (!response.ok()) {
    state_ = State::kFailed;
    return propagate<roap::ProtectedRo>(response);
  }
  Result<roap::ProtectedRo> out = conclude(*response);
  if (!out.ok()) state_ = State::kFailed;  // single-shot semantics
  return out;
}

Result<roap::ProtectedRo> AcquisitionSession::run(
    roap::Transport& transport, const roap::RetryPolicy& policy, Rng& rng,
    roap::RetryClock* clock) {
  roap::VirtualRetryClock owned;
  roap::RetryClock& clk = clock != nullptr ? *clock : owned;

  Result<Envelope> request_env = request();
  if (!request_env.ok()) return propagate<roap::ProtectedRo>(request_env);

  Result<roap::ProtectedRo> out = drive_pass<roap::ProtectedRo>(
      transport, *request_env, policy, rng, clk, clk.now_ms(),
      [this](const Envelope& response) { return conclude(response); });
  if (!out.ok() && terminal(out.code())) state_ = State::kFailed;
  return out;
}

// ---------------------------------------------------------------------------
// DomainSession
// ---------------------------------------------------------------------------

DomainSession::DomainSession(DrmAgent& agent, Kind kind, std::string ri_id,
                             std::string domain_id, std::uint64_t now)
    : agent_(agent),
      kind_(kind),
      ri_id_(std::move(ri_id)),
      domain_id_(std::move(domain_id)),
      now_(now) {}

Result<Envelope> DomainSession::request() {
  if (state_ != State::kStart) {
    throw Error(ErrorKind::kProtocol,
                "domain session: request() out of order");
  }
  // Same context-validity rule as acquisition: a revoked or expired RI
  // must not be able to key the device into (or out of) a domain.
  auto ctx = agent_.ri_contexts_.find(ri_id_);
  if (ctx == agent_.ri_contexts_.end()) {
    state_ = State::kFailed;
    return Result<Envelope>(StatusCode::kNoRiContext,
                            "no RI context for " + ri_id_);
  }
  Result<> valid = agent_.revalidate_context(ctx->second, now_);
  if (!valid.ok()) {
    state_ = State::kFailed;
    return propagate<Envelope>(valid);
  }
  Envelope out =
      kind_ == Kind::kJoin
          ? Envelope::wrap(agent_.make_join_domain_request(ri_id_, domain_id_,
                                                           device_nonce_))
          : Envelope::wrap(agent_.make_leave_domain_request(ri_id_, domain_id_,
                                                            device_nonce_));
  state_ = State::kAwaitResponse;
  return out;
}

Result<> DomainSession::conclude(const Envelope& response) {
  if (state_ != State::kAwaitResponse) {
    throw Error(ErrorKind::kProtocol,
                "domain session: conclude() out of order");
  }
  Result<> out = Result<>(StatusCode::kRiAborted);
  if (kind_ == Kind::kJoin) {
    Result<roap::JoinDomainResponse> msg =
        open_expected<roap::JoinDomainResponse>(response);
    if (!msg.ok()) {
      if (terminal(msg.code())) state_ = State::kFailed;
      return propagate<void>(msg);
    }
    out = agent_.accept_join_domain_response(*msg, ri_id_, domain_id_,
                                             device_nonce_);
  } else {
    Result<roap::LeaveDomainResponse> msg =
        open_expected<roap::LeaveDomainResponse>(response);
    if (!msg.ok()) {
      if (terminal(msg.code())) state_ = State::kFailed;
      return propagate<void>(msg);
    }
    out = agent_.accept_leave_domain_response(*msg, ri_id_, domain_id_,
                                              device_nonce_);
  }
  state_ = out.ok() ? State::kComplete
                    : (terminal(out.code()) ? State::kFailed
                                            : State::kAwaitResponse);
  return out;
}

Result<> DomainSession::run(roap::Transport& transport) {
  Result<Envelope> request_env = request();
  if (!request_env.ok()) return propagate<void>(request_env);

  Result<Envelope> response = exchange(transport, *request_env);
  if (!response.ok()) {
    state_ = State::kFailed;
    return propagate<void>(response);
  }
  Result<> out = conclude(*response);
  if (!out.ok()) state_ = State::kFailed;  // single-shot semantics
  return out;
}

Result<> DomainSession::run(roap::Transport& transport,
                            const roap::RetryPolicy& policy, Rng& rng,
                            roap::RetryClock* clock) {
  roap::VirtualRetryClock owned;
  roap::RetryClock& clk = clock != nullptr ? *clock : owned;

  Result<Envelope> request_env = request();
  if (!request_env.ok()) return propagate<void>(request_env);

  Result<> out = drive_pass<void>(
      transport, *request_env, policy, rng, clk, clk.now_ms(),
      [this](const Envelope& response) -> Result<void> {
        return conclude(response);
      });
  if (!out.ok() && terminal(out.code())) state_ = State::kFailed;
  return out;
}

}  // namespace omadrm::agent
