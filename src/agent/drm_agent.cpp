#include "agent/drm_agent.h"

#include <utility>

#include "agent/sessions.h"
#include "common/base64.h"
#include "common/error.h"

namespace omadrm::agent {

using omadrm::Error;
using omadrm::ErrorKind;
using roap::Status;

namespace {

// Store record keys. "id" carries the identity; the prefixed families
// carry one record per RI context / domain key / installed RO / per-RO
// constraint state. The constraint state is its own (small, binary)
// record so a burn commit rewrites ~100 bytes, not the whole RO.
constexpr const char* kIdentityKey = "id";

std::string ri_record_key(const std::string& ri_id) { return "ri/" + ri_id; }
std::string domain_record_key(const std::string& id) { return "dom/" + id; }
std::string ro_record_key(const std::string& ro_id) { return "ro/" + ro_id; }
std::string state_record_key(const std::string& ro_id) {
  return "st/" + ro_id;
}

constexpr rel::PermissionType kAllPermissions[] = {
    rel::PermissionType::kPlay, rel::PermissionType::kDisplay,
    rel::PermissionType::kExecute, rel::PermissionType::kPrint,
    rel::PermissionType::kExport};

/// Bytes per permission in the binary "st/" record: be32 used, u8
/// first-use flag, be64 first_use, be64 accumulated.
constexpr std::size_t kStateSlot = 4 + 1 + 8 + 8;

/// The "st/" record of a freshly installed RO: a default State encodes
/// as all zeros for every permission.
Bytes zero_enforcer_state() {
  return Bytes(std::size(kAllPermissions) * kStateSlot, 0);
}

}  // namespace

DrmAgent::DrmAgent(std::string device_id, pki::Certificate trust_root,
                   provider::CryptoProvider& crypto, Rng& rng,
                   std::size_t key_bits)
    : device_id_(std::move(device_id)),
      trust_root_(std::move(trust_root)),
      crypto_(crypto),
      rng_(rng),
      key_(rsa::generate_key(key_bits, rng)),
      kdev_(rng.bytes(16)),
      chain_verifier_(trust_root_,
                      pki::ChainVerifier::metered_verify(crypto)) {}

DrmAgent::DrmAgent(FromStoreTag, pki::Certificate trust_root,
                   provider::CryptoProvider& crypto, Rng& rng, Bytes kdev)
    : trust_root_(std::move(trust_root)),
      crypto_(crypto),
      rng_(rng),
      kdev_(std::move(kdev)),
      chain_verifier_(trust_root_,
                      pki::ChainVerifier::metered_verify(crypto)) {}

void DrmAgent::provision(pki::Certificate device_certificate) {
  if (!(device_certificate.subject_key().n == key_.n)) {
    throw Error(ErrorKind::kProtocol,
                "agent: certificate does not match device key");
  }
  pki::Certificate previous_cert =
      std::exchange(certificate_, std::move(device_certificate));
  Bytes previous_der = std::exchange(certificate_der_, certificate_.to_der());
  if (store_ != nullptr) {
    store::Transaction tx;
    tx.put(kIdentityKey, encode_identity());
    Result<> committed = store_->commit(tx);
    if (!committed.ok()) {
      // Same barrier as every other mutation: a provisioning the store
      // refused must not be acknowledged in RAM either.
      certificate_ = std::move(previous_cert);
      certificate_der_ = std::move(previous_der);
      throw Error(ErrorKind::kState,
                  "agent: store refused identity commit: " +
                      committed.describe());
    }
  }
}

const pki::Certificate& DrmAgent::certificate() const {
  if (certificate_der_.empty()) {
    throw Error(ErrorKind::kState, "agent: not provisioned");
  }
  return certificate_;
}

bool DrmAgent::has_ri_context(const std::string& ri_id) const {
  return ri_contexts_.count(ri_id) > 0;
}

const RiContext* DrmAgent::ri_context(const std::string& ri_id) const {
  auto it = ri_contexts_.find(ri_id);
  return it == ri_contexts_.end() ? nullptr : &it->second;
}

std::shared_ptr<const pki::ChainVerdict> DrmAgent::verify_chain_metered(
    const std::vector<pki::Certificate>& chain, std::uint64_t now) {
  return chain_verifier_.verify(chain, now);
}

AgentStatus DrmAgent::verify_ocsp_metered(const pki::OcspResponse& ocsp,
                                          const bigint::BigInt& expected_serial,
                                          ByteView expected_nonce,
                                          std::uint64_t now) {
  if (!(ocsp.serial() == expected_serial)) return AgentStatus::kOcspInvalid;
  if (!ct_equal(ocsp.nonce(), expected_nonce)) {
    return AgentStatus::kOcspInvalid;
  }
  if (ocsp.produced_at() > now || now - ocsp.produced_at() > kMaxOcspAge) {
    return AgentStatus::kOcspInvalid;
  }
  // Our profile has the CA sign OCSP responses with the root key.
  if (!crypto_.pss_verify(trust_root_.subject_key(), ocsp.tbs_der(),
                          ocsp.signature())) {
    return AgentStatus::kOcspInvalid;
  }
  if (ocsp.status() == pki::OcspCertStatus::kRevoked) {
    return AgentStatus::kCertificateRevoked;
  }
  if (ocsp.status() != pki::OcspCertStatus::kGood) {
    return AgentStatus::kOcspInvalid;
  }
  return AgentStatus::kOk;
}

Result<> DrmAgent::revalidate_context(RiContext& ctx, std::uint64_t now) {
  std::shared_ptr<const pki::ChainVerdict> verdict =
      chain_verifier_.revalidate(ctx.verified_chain, ctx.ri_chain, now);
  if (verdict->status != pki::CertStatus::kValid) {
    switch (verdict->status) {
      case pki::CertStatus::kExpired:
      case pki::CertStatus::kNotYetValid:
        return Result<>(AgentStatus::kRiContextExpired,
                        "RI certificate chain outside validity for " +
                            ctx.ri_id);
      case pki::CertStatus::kRevoked:
        return Result<>(AgentStatus::kCertificateRevoked,
                        "RI certificate revoked for " + ctx.ri_id);
      default:
        return Result<>(AgentStatus::kCertificateInvalid,
                        "RI certificate chain invalid for " + ctx.ri_id);
    }
  }
  ctx.verified_chain = std::move(verdict);
  return Result<>();
}

// ---------------------------------------------------------------------------
// Phase 1: Registration (4-pass ROAP)
// ---------------------------------------------------------------------------

roap::DeviceHello DrmAgent::make_device_hello(PendingRegistration& pending) {
  if (!is_provisioned()) {
    throw Error(ErrorKind::kState, "agent: not provisioned");
  }
  // Pass 1: capability advertisement (no cryptography, paper §2.4.1).
  roap::DeviceHello hello;
  hello.device_id = device_id_;
  hello.algorithms = {"SHA-1", "HMAC-SHA1", "AES-128-CBC", "AES-WRAP",
                      "RSA-1024", "RSA-PSS", "KDF2"};
  hello.device_nonce = rng_.bytes(roap::kNonceLen);
  pending.device_nonce = hello.device_nonce;
  return hello;
}

roap::RegistrationRequest DrmAgent::make_registration_request(
    const roap::RiHello& ri_hello, PendingRegistration& pending) {
  // Pass 3: signed RegistrationRequest carrying our certificate.
  roap::RegistrationRequest request;
  request.session_id = ri_hello.session_id;
  request.device_id = device_id_;
  request.device_nonce = pending.device_nonce;
  request.ri_nonce = ri_hello.ri_nonce;
  request.certificate_der = certificate_der_;
  request.ocsp_nonce = rng_.bytes(roap::kNonceLen);
  request.signature = crypto_.pss_sign(key_, request.payload(), rng_);
  pending.session_id = request.session_id;
  pending.ocsp_nonce = request.ocsp_nonce;
  return request;
}

Result<> DrmAgent::register_with(roap::Transport& transport,
                                 std::uint64_t now) {
  return RegistrationSession(*this, now).run(transport);
}

Result<> DrmAgent::register_with(roap::Transport& transport,
                                 std::uint64_t now,
                                 const roap::RetryPolicy& policy,
                                 roap::RetryClock* clock) {
  return RegistrationSession(*this, now).run(transport, policy, rng_, clock);
}

Result<> DrmAgent::accept_registration_response(
    const roap::RegistrationResponse& response,
    const PendingRegistration& pending, std::uint64_t now) {
  if (response.status != Status::kSuccess) {
    return Result<>(roap::status_code(response.status),
                    std::string("RI reported ") +
                        roap::to_string(response.status) +
                        " in RegistrationResponse");
  }
  if (response.session_id != pending.session_id) {
    return Result<>(AgentStatus::kNonceMismatch,
                    "RegistrationResponse for session '" +
                        response.session_id + "', ours is '" +
                        pending.session_id + "'");
  }

  // Verify the RI certificate chain (leaf + any intermediates) against
  // our trust root, through the verdict cache.
  std::vector<pki::Certificate> ri_chain;
  try {
    ri_chain.push_back(pki::Certificate::from_der(response.ri_certificate_der));
    for (const Bytes& der : response.ri_certificate_chain_der) {
      ri_chain.push_back(pki::Certificate::from_der(der));
    }
  } catch (const Error& e) {
    return Result<>(AgentStatus::kCertificateInvalid,
                    std::string("RI certificate unparseable: ") + e.what());
  }
  std::shared_ptr<const pki::ChainVerdict> verdict =
      verify_chain_metered(ri_chain, now);
  if (verdict->status == pki::CertStatus::kRevoked) {
    return Result<>(AgentStatus::kCertificateRevoked,
                    "RI certificate chain revoked");
  }
  if (verdict->status != pki::CertStatus::kValid) {
    return Result<>(AgentStatus::kCertificateInvalid,
                    "RI certificate chain failed validation");
  }
  const pki::Certificate& ri_cert = ri_chain.front();

  // Verify the stapled OCSP response for the RI certificate.
  pki::OcspResponse ocsp;
  try {
    ocsp = pki::OcspResponse::from_der(response.ocsp_response_der);
  } catch (const Error& e) {
    return Result<>(AgentStatus::kOcspInvalid,
                    std::string("stapled OCSP unparseable: ") + e.what());
  }
  AgentStatus ocsp_status =
      verify_ocsp_metered(ocsp, ri_cert.serial(), pending.ocsp_nonce, now);
  if (ocsp_status != AgentStatus::kOk) {
    if (ocsp_status == AgentStatus::kCertificateRevoked) {
      // A revoked chain must not keep serving cache hits.
      chain_verifier_.invalidate_serial(ri_cert.serial());
    }
    return Result<>(ocsp_status, "stapled OCSP response rejected");
  }

  // Verify the message signature with the (now trusted) RI key.
  if (!crypto_.pss_verify(ri_cert.subject_key(), response.payload(),
                          response.signature)) {
    return Result<>(AgentStatus::kSignatureInvalid,
                    "RegistrationResponse signature rejected");
  }

  RiContext ctx;
  ctx.ri_id = response.ri_id;
  ctx.ri_url = response.ri_url;
  ctx.ri_chain = std::move(ri_chain);
  ctx.verified_chain = std::move(verdict);
  ctx.established_at = now;
  // Durability before acknowledgement: the RI Context the standard says
  // the device "saves" must actually survive a crash after this returns.
  if (store_ != nullptr) {
    store::Transaction tx;
    tx.put(ri_record_key(ctx.ri_id), encode_ri_context(ctx));
    Result<> committed = store_->commit(tx);
    if (!committed.ok()) return committed;
  }
  ri_contexts_[ctx.ri_id] = std::move(ctx);
  return Result<>();
}

// ---------------------------------------------------------------------------
// Phase 2: Acquisition
// ---------------------------------------------------------------------------

roap::RoRequest DrmAgent::make_ro_request(const std::string& ri_id,
                                          const std::string& ro_id,
                                          Bytes& device_nonce) {
  roap::RoRequest request;
  request.device_id = device_id_;
  request.ri_id = ri_id;
  request.ro_id = ro_id;
  request.device_nonce = rng_.bytes(roap::kNonceLen);
  request.signature = crypto_.pss_sign(key_, request.payload(), rng_);
  device_nonce = request.device_nonce;
  return request;
}

Result<roap::ProtectedRo> DrmAgent::accept_ro_response(
    const roap::RoResponse& response, const std::string& ri_id,
    ByteView expected_nonce, std::uint64_t now) {
  // Bind the response to the session's requested RI before trusting any
  // field in it — a valid response from a *different* RI context must
  // not satisfy this exchange.
  if (response.ri_id != ri_id) {
    return Result<roap::ProtectedRo>(
        AgentStatus::kNonceMismatch,
        "ROResponse from '" + response.ri_id + "', session is with '" +
            ri_id + "'");
  }
  auto ctx = ri_contexts_.find(ri_id);
  if (ctx == ri_contexts_.end()) {
    return Result<roap::ProtectedRo>(AgentStatus::kNoRiContext,
                                     "no RI context for " + ri_id);
  }
  // Verify the context again at the moment of use — O(1) on the cached
  // verdict, a full chain walk when the caches are cold/disabled.
  Result<> valid = revalidate_context(ctx->second, now);
  if (!valid.ok()) return propagate<roap::ProtectedRo>(valid);

  if (response.status != Status::kSuccess) {
    return Result<roap::ProtectedRo>(
        roap::status_code(response.status),
        std::string("RI reported ") + roap::to_string(response.status) +
            " in ROResponse");
  }
  if (!ct_equal(response.device_nonce, expected_nonce)) {
    return Result<roap::ProtectedRo>(
        AgentStatus::kNonceMismatch,
        "ROResponse not bound to our request nonce");
  }
  if (!crypto_.pss_verify(ctx->second.ri_certificate().subject_key(),
                          response.payload(), response.signature)) {
    return Result<roap::ProtectedRo>(AgentStatus::kSignatureInvalid,
                                     "ROResponse signature rejected");
  }
  if (response.ros.empty()) {
    return Result<roap::ProtectedRo>(AgentStatus::kRiAborted,
                                     "ROResponse carried no RO");
  }
  return Result<roap::ProtectedRo>(response.ros.front());
}

Result<roap::ProtectedRo> DrmAgent::acquire_ro(roap::Transport& transport,
                                               const std::string& ri_id,
                                               const std::string& ro_id,
                                               std::uint64_t now) {
  return AcquisitionSession(*this, ri_id, ro_id, now).run(transport);
}

Result<roap::ProtectedRo> DrmAgent::acquire_ro(
    roap::Transport& transport, const std::string& ri_id,
    const std::string& ro_id, std::uint64_t now,
    const roap::RetryPolicy& policy, roap::RetryClock* clock) {
  return AcquisitionSession(*this, ri_id, ro_id, now)
      .run(transport, policy, rng_, clock);
}

// ---------------------------------------------------------------------------
// Phase 3: Installation (paper §2.4.3 / Figure 3)
// ---------------------------------------------------------------------------

AgentStatus DrmAgent::install_ro(const roap::ProtectedRo& ro,
                                 std::uint64_t now) {
  (void)now;
  // Unwrap K_MAC || K_REK.
  Bytes kmac_krek;
  if (ro.is_domain_ro) {
    auto dk = domain_keys_.find(ro.domain_id);
    if (dk == domain_keys_.end()) return AgentStatus::kNoDomainKey;
    // A key of the wrong generation cannot unwrap this RO; require a
    // re-join instead of burning an unwrap that is guaranteed to fail.
    if (dk->second.second != ro.domain_generation) {
      return AgentStatus::kNoDomainKey;
    }
    auto unwrapped = crypto_.aes_unwrap(dk->second.first, ro.wrapped_keys);
    if (!unwrapped) return AgentStatus::kUnwrapFailed;
    kmac_krek = std::move(*unwrapped);
  } else {
    const std::size_t k = key_.byte_length();
    if (ro.wrapped_keys.size() < k + 24) return AgentStatus::kUnwrapFailed;
    // C1 -> RSADP -> Z -> KDF2 -> KEK (one RSA private-key operation).
    Bytes kek = crypto_.kem_decapsulate(
        key_, ByteView(ro.wrapped_keys).subspan(0, k));
    auto unwrapped =
        crypto_.aes_unwrap(kek, ByteView(ro.wrapped_keys).subspan(k));
    if (!unwrapped) return AgentStatus::kUnwrapFailed;
    kmac_krek = std::move(*unwrapped);
  }
  if (kmac_krek.size() != 32) return AgentStatus::kUnwrapFailed;
  ByteView kmac = ByteView(kmac_krek).subspan(0, 16);

  // RO integrity & authenticity (key-confirmation MAC).
  if (!crypto_.hmac_verify(kmac, ro.mac_payload(), ro.mac)) {
    return AgentStatus::kMacMismatch;
  }

  // RO signature: mandatory for Domain ROs, verified when present.
  if (ro.is_domain_ro || !ro.signature.empty()) {
    auto ctx = ri_contexts_.find(ro.ri_id);
    if (ctx == ri_contexts_.end()) return AgentStatus::kNoRiContext;
    if (ro.signature.empty() ||
        !crypto_.pss_verify(ctx->second.ri_certificate().subject_key(),
                            ro.signed_payload(), ro.signature)) {
      return AgentStatus::kRoSignatureInvalid;
    }
  }

  // Replace the PKI protection with the device key: C2dev (Figure 3).
  Bytes c2dev = crypto_.aes_wrap(kdev_, kmac_krek);

  const std::string& ro_id = ro.rights.ro_id;
  // Persist before the RAM install so a refused commit leaves no
  // half-installed RO. The fresh all-zero constraint state is written
  // explicitly: a replaced RO must not re-attach its predecessor's burns
  // on the next reload.
  if (store_ != nullptr) {
    store::Transaction tx;
    tx.put(ro_record_key(ro_id), encode_installed_ro(ro, c2dev));
    tx.put(state_record_key(ro_id), zero_enforcer_state());
    if (!store_->commit(tx).ok()) return AgentStatus::kStoreFailure;
  }
  if (installed_.erase(ro_id) > 0) {
    // A replaced RO may carry a re-keyed CEK; its cached schedule dies
    // with it.
    aes_cache_.invalidate_ro(ro_id);
  }
  installed_.emplace(ro_id, InstalledRo(ro, std::move(c2dev)));
  auto& index = by_content_[ro.rights.content_id];
  bool known = false;
  for (const auto& id : index) known |= (id == ro_id);
  if (!known) index.push_back(ro_id);
  return AgentStatus::kOk;
}

const InstalledRo* DrmAgent::installed_ro(const std::string& ro_id) const {
  auto it = installed_.find(ro_id);
  return it == installed_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Phase 4: Consumption (paper §2.4.4 — every access)
// ---------------------------------------------------------------------------

ConsumeResult DrmAgent::consume(const dcf::Dcf& dcf,
                                rel::PermissionType permission,
                                std::uint64_t now,
                                std::uint64_t duration_secs) {
  ConsumeResult out;
  ContentSession session = open_content(dcf, permission, now, duration_secs);
  out.status = session.status();
  out.decision = session.decision();
  out.ro_id = session.ro_id();
  if (!session.ok()) return out;
  out.content = session.read_all();
  if (!session.ok()) {
    // Integrity failure surfaced at the final block (recorded size vs
    // actual padding): report it, hand out nothing.
    out.status = session.status();
    out.content.clear();
  }
  return out;
}

ContentSession DrmAgent::open_content(const dcf::Dcf& dcf,
                                      rel::PermissionType permission,
                                      std::uint64_t now,
                                      std::uint64_t duration_secs) {
  // The container hash is computed at most once per Dcf (cached); the
  // cost model still sees the paper's per-access hashing via the charge
  // inside open_content_impl.
  return open_content_impl(dcf.headers().content_id, dcf.hash(),
                           dcf.serialized_size(), dcf.iv(),
                           dcf.encrypted_payload(), dcf.plaintext_size(),
                           permission, now, duration_secs);
}

ContentSession DrmAgent::open_content(const dcf::DcfReader& dcf,
                                      rel::PermissionType permission,
                                      std::uint64_t now,
                                      std::uint64_t duration_secs) {
  return open_content_impl(dcf.content_id(), dcf.hash(), dcf.wire().size(),
                           dcf.iv(), dcf.encrypted_payload(),
                           dcf.plaintext_size(), permission, now,
                           duration_secs);
}

ContentSession DrmAgent::open_content_impl(
    std::string_view content_id, ByteView dcf_hash,
    std::size_t container_bytes, ByteView iv, ByteView payload,
    std::uint64_t plaintext_size, rel::PermissionType permission,
    std::uint64_t now, std::uint64_t duration_secs) {
  ContentSession session;
  auto index = by_content_.find(content_id);
  if (index == by_content_.end() || index->second.empty()) {
    session.status_ = AgentStatus::kNotInstalled;
    return session;
  }

  for (const std::string& ro_id : index->second) {
    InstalledRo& inst = installed_.at(ro_id);
    session.ro_id_ = ro_id;

    // Step 1: decrypt C2dev with K_DEV.
    auto kmac_krek = crypto_.aes_unwrap(kdev_, inst.c2dev);
    if (!kmac_krek || kmac_krek->size() != 32) {
      session.status_ = AgentStatus::kUnwrapFailed;
      return session;
    }
    ByteView kmac = ByteView(*kmac_krek).subspan(0, 16);
    ByteView krek = ByteView(*kmac_krek).subspan(16, 16);

    // Step 2: verify RO integrity via its MAC.
    if (!crypto_.hmac_verify(kmac, inst.ro.mac_payload(), inst.ro.mac)) {
      session.status_ = AgentStatus::kMacMismatch;
      return session;
    }

    // Step 3: verify DCF integrity against the hash in the RO. The hash
    // itself was computed once for the container (Dcf caches it, the
    // reader folds it into parsing); the paper's per-access hashing cost
    // is still charged to the cycle model.
    crypto_.charge_sha1(container_bytes);
    if (!ct_equal(dcf_hash, inst.ro.rights.dcf_hash)) {
      session.status_ = AgentStatus::kDcfHashMismatch;
      return session;
    }

    // Unlock the chain: K_REK -> K_CEK. This (and the size-consistency
    // check below) is stateless, so it runs BEFORE the budget burns: a
    // corrupted install or inconsistent container must fail without
    // consuming — and, store-backed, without durably draining a count
    // per retry.
    auto kcek = crypto_.aes_unwrap(krek, inst.ro.enc_kcek);
    if (!kcek) {
      session.status_ = AgentStatus::kUnwrapFailed;
      return session;
    }

    // A container whose payload cannot possibly unpad to the recorded
    // plaintext size is inconsistent with the hash the RO bound.
    if (payload.size() <= plaintext_size ||
        payload.size() - plaintext_size > crypto::Aes::kBlockSize) {
      session.status_ = AgentStatus::kDcfHashMismatch;
      return session;
    }

    // REL constraint evaluation; try the next RO for this content when
    // this one denies (multiple ROs per DCF are legal, paper §2.4.3).
    const rel::RightsEnforcer::State pre_burn =
        inst.enforcer.state(permission);
    rel::Decision decision =
        inst.enforcer.check_and_consume(permission, now, duration_secs);
    session.decision_ = decision;
    if (decision != rel::Decision::kGranted) {
      session.status_ = AgentStatus::kPermissionDenied;
      continue;
    }

    // Durable-burn barrier: the consumed budget commits to secure
    // storage BEFORE any session is returned. Every check that could
    // still refuse this access sits above, so a committed burn always
    // corresponds to a delivered session; a crash after this point
    // reloads the burn, a crash before it loses only a grant that was
    // never delivered. When the store cannot commit, durability cannot
    // be guaranteed — the RAM burn is reverted and the access refused
    // (fail closed, never fail open into an unaccounted grant).
    if (store_ != nullptr) {
      store::Transaction tx;
      tx.put(state_record_key(ro_id), encode_enforcer_state(inst.enforcer));
      Result<> committed = store_->commit(tx);
      if (!committed.ok()) {
        inst.enforcer.restore_state(permission, pre_burn);
        session.status_ = AgentStatus::kStoreFailure;
        return session;
      }
    }

    // One-time bulk-decrypt setup: cached key schedule (the per-access
    // AES-CBC cost is charged here; the chunked reads execute it through
    // the fused core) and the borrowed-ciphertext stream.
    session.aes_ = aes_cache_.get(*kcek, ro_id);
    crypto_.charge_aes_cbc_decrypt(payload.size());
    session.stream_ = crypto::CbcDecryptStream(*session.aes_, iv, payload);
    session.plaintext_size_ = plaintext_size;
    session.status_ = AgentStatus::kOk;
    return session;
  }
  return session;  // last denial
}

// ---------------------------------------------------------------------------
// Domains
// ---------------------------------------------------------------------------

roap::JoinDomainRequest DrmAgent::make_join_domain_request(
    const std::string& ri_id, const std::string& domain_id,
    Bytes& device_nonce) {
  roap::JoinDomainRequest request;
  request.device_id = device_id_;
  request.ri_id = ri_id;
  request.domain_id = domain_id;
  request.device_nonce = rng_.bytes(roap::kNonceLen);
  request.signature = crypto_.pss_sign(key_, request.payload(), rng_);
  device_nonce = request.device_nonce;
  return request;
}

Result<> DrmAgent::accept_join_domain_response(
    const roap::JoinDomainResponse& response, const std::string& ri_id,
    const std::string& domain_id, ByteView expected_nonce) {
  auto ctx = ri_contexts_.find(ri_id);
  if (ctx == ri_contexts_.end()) {
    return Result<>(AgentStatus::kNoRiContext, "no RI context for " + ri_id);
  }
  if (response.status != Status::kSuccess) {
    return Result<>(roap::status_code(response.status),
                    std::string("RI reported ") +
                        roap::to_string(response.status) +
                        " in JoinDomainResponse");
  }
  // Bind the response to this session: the echoed nonce proves freshness
  // (a replayed join cannot re-key the device) and the domain id proves
  // it answers *this* join, not an older one for another domain.
  if (!ct_equal(response.device_nonce, expected_nonce)) {
    return Result<>(AgentStatus::kNonceMismatch,
                    "JoinDomainResponse not bound to our request nonce");
  }
  if (response.domain_id != domain_id) {
    return Result<>(AgentStatus::kNonceMismatch,
                    "JoinDomainResponse for domain '" + response.domain_id +
                        "', requested '" + domain_id + "'");
  }
  if (!crypto_.pss_verify(ctx->second.ri_certificate().subject_key(),
                          response.payload(), response.signature)) {
    return Result<>(AgentStatus::kSignatureInvalid,
                    "JoinDomainResponse signature rejected");
  }

  const std::size_t k = key_.byte_length();
  if (response.wrapped_domain_key.size() < k + 24) {
    return Result<>(AgentStatus::kUnwrapFailed,
                    "wrapped domain key too short");
  }
  Bytes kek = crypto_.kem_decapsulate(
      key_, ByteView(response.wrapped_domain_key).subspan(0, k));
  auto domain_key =
      crypto_.aes_unwrap(kek, ByteView(response.wrapped_domain_key).subspan(k));
  if (!domain_key || domain_key->size() != 16) {
    return Result<>(AgentStatus::kUnwrapFailed,
                    "domain key failed AES-UNWRAP integrity check");
  }
  std::pair<Bytes, std::uint32_t> entry{std::move(*domain_key),
                                        response.generation};
  if (store_ != nullptr) {
    store::Transaction tx;
    tx.put(domain_record_key(response.domain_id),
           encode_domain_key(response.domain_id, entry));
    Result<> committed = store_->commit(tx);
    if (!committed.ok()) return committed;
  }
  domain_keys_[response.domain_id] = std::move(entry);
  return Result<>();
}

roap::LeaveDomainRequest DrmAgent::make_leave_domain_request(
    const std::string& ri_id, const std::string& domain_id,
    Bytes& device_nonce) {
  roap::LeaveDomainRequest request;
  request.device_id = device_id_;
  request.ri_id = ri_id;
  request.domain_id = domain_id;
  request.device_nonce = rng_.bytes(roap::kNonceLen);
  request.signature = crypto_.pss_sign(key_, request.payload(), rng_);
  device_nonce = request.device_nonce;
  return request;
}

Result<> DrmAgent::accept_leave_domain_response(
    const roap::LeaveDomainResponse& response, const std::string& ri_id,
    const std::string& domain_id, ByteView expected_nonce) {
  auto ctx = ri_contexts_.find(ri_id);
  if (ctx == ri_contexts_.end()) {
    return Result<>(AgentStatus::kNoRiContext, "no RI context for " + ri_id);
  }
  if (response.status != Status::kSuccess) {
    return Result<>(roap::status_code(response.status),
                    std::string("RI reported ") +
                        roap::to_string(response.status) +
                        " in LeaveDomainResponse");
  }
  if (!ct_equal(response.device_nonce, expected_nonce)) {
    return Result<>(AgentStatus::kNonceMismatch,
                    "LeaveDomainResponse not bound to our request nonce");
  }
  if (!crypto_.pss_verify(ctx->second.ri_certificate().subject_key(),
                          response.payload(), response.signature)) {
    return Result<>(AgentStatus::kSignatureInvalid,
                    "LeaveDomainResponse signature rejected");
  }

  // Compliance: discard K_D and uninstall this domain's Rights Objects.
  // The RAM discard happens unconditionally (keeping keys is never the
  // safe direction); a store that then refuses the matching erase is
  // reported so the caller knows the medium may resurrect them on the
  // next reload.
  store::Transaction tx;
  tx.erase(domain_record_key(domain_id));
  domain_keys_.erase(domain_id);
  for (auto it = installed_.begin(); it != installed_.end();) {
    if (it->second.ro.is_domain_ro && it->second.ro.domain_id == domain_id) {
      auto& index = by_content_[it->second.ro.rights.content_id];
      std::erase(index, it->first);
      aes_cache_.invalidate_ro(it->first);
      tx.erase(ro_record_key(it->first));
      tx.erase(state_record_key(it->first));
      it = installed_.erase(it);
    } else {
      ++it;
    }
  }
  if (store_ != nullptr) {
    Result<> committed = store_->commit(tx);
    if (!committed.ok()) return committed;
  }
  return Result<>();
}

Result<> DrmAgent::join_domain(roap::Transport& transport,
                               const std::string& ri_id,
                               const std::string& domain_id,
                               std::uint64_t now) {
  return DomainSession(*this, DomainSession::Kind::kJoin, ri_id, domain_id,
                       now)
      .run(transport);
}

Result<> DrmAgent::leave_domain(roap::Transport& transport,
                                const std::string& ri_id,
                                const std::string& domain_id,
                                std::uint64_t now) {
  return DomainSession(*this, DomainSession::Kind::kLeave, ri_id, domain_id,
                       now)
      .run(transport);
}

Result<> DrmAgent::join_domain(roap::Transport& transport,
                               const std::string& ri_id,
                               const std::string& domain_id, std::uint64_t now,
                               const roap::RetryPolicy& policy,
                               roap::RetryClock* clock) {
  return DomainSession(*this, DomainSession::Kind::kJoin, ri_id, domain_id,
                       now)
      .run(transport, policy, rng_, clock);
}

Result<> DrmAgent::leave_domain(roap::Transport& transport,
                                const std::string& ri_id,
                                const std::string& domain_id,
                                std::uint64_t now,
                                const roap::RetryPolicy& policy,
                                roap::RetryClock* clock) {
  return DomainSession(*this, DomainSession::Kind::kLeave, ri_id, domain_id,
                       now)
      .run(transport, policy, rng_, clock);
}

Result<roap::ProtectedRo> DrmAgent::handle_trigger(
    roap::Transport& transport, const roap::RoAcquisitionTrigger& trigger,
    std::uint64_t now) {
  if (!trigger.domain_id.empty() && !has_domain_key(trigger.domain_id)) {
    Result<> join = join_domain(transport, trigger.ri_id, trigger.domain_id,
                                now);
    if (!join.ok()) return propagate<roap::ProtectedRo>(join);
  }
  return acquire_ro(transport, trigger.ri_id, trigger.ro_id, now);
}

Result<roap::ProtectedRo> DrmAgent::handle_trigger(
    roap::Transport& transport, const roap::RoAcquisitionTrigger& trigger,
    std::uint64_t now, const roap::RetryPolicy& policy,
    roap::RetryClock* clock) {
  if (!trigger.domain_id.empty() && !has_domain_key(trigger.domain_id)) {
    Result<> join = join_domain(transport, trigger.ri_id, trigger.domain_id,
                                now, policy, clock);
    if (!join.ok()) return propagate<roap::ProtectedRo>(join);
  }
  return acquire_ro(transport, trigger.ri_id, trigger.ro_id, now, policy,
                    clock);
}

bool DrmAgent::has_domain_key(const std::string& domain_id) const {
  return domain_keys_.count(domain_id) > 0;
}

std::optional<std::uint32_t> DrmAgent::domain_generation(
    const std::string& domain_id) const {
  auto it = domain_keys_.find(domain_id);
  if (it == domain_keys_.end()) return std::nullopt;
  return it->second.second;
}

std::optional<std::uint32_t> DrmAgent::remaining_count(
    const std::string& ro_id, rel::PermissionType permission) const {
  auto it = installed_.find(ro_id);
  if (it == installed_.end()) return std::nullopt;
  return it->second.enforcer.remaining_count(permission);
}

// ---------------------------------------------------------------------------
// Persistence (secure-storage records + export/import wrappers)
// ---------------------------------------------------------------------------

namespace {

std::uint64_t parse_u64_attr(const xml::Element& e, const std::string& key) {
  const std::string& s = e.require_attr(key);
  std::optional<std::uint64_t> v = parse_u64_dec(s);
  if (!v) {
    throw Error(ErrorKind::kFormat, "agent state: bad number " + s);
  }
  return *v;
}

void restore_enforcer_state(rel::RightsEnforcer& enforcer, ByteView value) {
  if (value.size() != std::size(kAllPermissions) * kStateSlot) {
    throw Error(ErrorKind::kFormat,
                "agent state: constraint state record malformed");
  }
  const std::uint8_t* p = value.data();
  for (rel::PermissionType perm : kAllPermissions) {
    rel::RightsEnforcer::State s;
    s.used = load_be32(p);
    if (p[4] > 1) {
      throw Error(ErrorKind::kFormat,
                  "agent state: constraint state record malformed");
    }
    if (p[4] == 1) s.first_use = load_be64(p + 5);
    s.accumulated = load_be64(p + 13);
    enforcer.restore_state(perm, s);
    p += kStateSlot;
  }
}

}  // namespace

Bytes DrmAgent::encode_identity() const {
  xml::Element root("identity");
  root.set_attr("device-id", device_id_);
  xml::Element key("device-key");
  key.set_attr("n", key_.n.to_hex());
  key.set_attr("e", key_.e.to_hex());
  key.set_attr("d", key_.d.to_hex());
  if (key_.has_crt) {
    key.set_attr("p", key_.p.to_hex());
    key.set_attr("q", key_.q.to_hex());
    key.set_attr("dp", key_.dp.to_hex());
    key.set_attr("dq", key_.dq.to_hex());
    key.set_attr("qinv", key_.qinv.to_hex());
  }
  root.add_child(std::move(key));
  if (!certificate_der_.empty()) {
    root.add_text_child("certificate", base64_encode(certificate_der_));
  }
  return to_bytes(root.serialize());
}

Bytes DrmAgent::encode_ri_context(const RiContext& ctx) {
  xml::Element e("ri-context");
  e.set_attr("id", ctx.ri_id);
  e.set_attr("url", ctx.ri_url);
  e.set_attr("established", std::to_string(ctx.established_at));
  e.add_text_child("certificate",
                   base64_encode(ctx.ri_certificate().to_der()));
  // Intermediates beyond the leaf (ri_chain[0] is the certificate above).
  for (std::size_t i = 1; i < ctx.ri_chain.size(); ++i) {
    e.add_text_child("intermediate", base64_encode(ctx.ri_chain[i].to_der()));
  }
  return to_bytes(e.serialize());
}

Bytes DrmAgent::encode_domain_key(
    const std::string& domain_id,
    const std::pair<Bytes, std::uint32_t>& entry) {
  xml::Element e("domain-key");
  e.set_attr("id", domain_id);
  e.set_attr("generation", std::to_string(entry.second));
  e.set_text(base64_encode(entry.first));
  return to_bytes(e.serialize());
}

Bytes DrmAgent::encode_installed_ro(const roap::ProtectedRo& ro,
                                    const Bytes& c2dev) {
  xml::Element e("installed-ro");
  e.add_child(ro.to_xml());
  e.add_text_child("c2dev", base64_encode(c2dev));
  return to_bytes(e.serialize());
}

Bytes DrmAgent::encode_enforcer_state(const rel::RightsEnforcer& enforcer) {
  Bytes out;
  out.reserve(std::size(kAllPermissions) * kStateSlot);
  for (rel::PermissionType perm : kAllPermissions) {
    rel::RightsEnforcer::State s = enforcer.state(perm);
    append_be32(out, s.used);
    out.push_back(s.first_use ? 1 : 0);
    append_be64(out, s.first_use.value_or(0));
    append_be64(out, s.accumulated);
  }
  return out;
}

std::vector<store::Record> DrmAgent::render_records() const {
  std::vector<store::Record> out;
  out.push_back(store::Record{kIdentityKey, encode_identity()});
  for (const auto& [id, ctx] : ri_contexts_) {
    out.push_back(store::Record{ri_record_key(id), encode_ri_context(ctx)});
  }
  for (const auto& [id, entry] : domain_keys_) {
    out.push_back(
        store::Record{domain_record_key(id), encode_domain_key(id, entry)});
  }
  for (const auto& [ro_id, inst] : installed_) {
    out.push_back(store::Record{ro_record_key(ro_id),
                                encode_installed_ro(inst.ro, inst.c2dev)});
    out.push_back(store::Record{state_record_key(ro_id),
                                encode_enforcer_state(inst.enforcer)});
  }
  return out;
}

/// A rejected image or a refused store commit must leave the agent
/// untouched, not gutted halfway (mirroring RightsIssuer::bind_store) —
/// hence parse into this, then adopt().
struct DrmAgent::ParsedState {
  std::string device_id;
  rsa::PrivateKey rsa_key;
  Bytes certificate_der;
  pki::Certificate certificate;
  std::map<std::string, RiContext> ri_contexts;
  std::map<std::string, std::pair<Bytes, std::uint32_t>> domain_keys;
  std::map<std::string, InstalledRo> installed;
  std::map<std::string, std::vector<std::string>, std::less<>> by_content;
};

DrmAgent::ParsedState DrmAgent::parse_records(
    const std::vector<store::Record>& records) {
  ParsedState out;
  std::string& device_id = out.device_id;
  rsa::PrivateKey& rsa_key = out.rsa_key;
  Bytes& certificate_der = out.certificate_der;
  pki::Certificate& certificate = out.certificate;
  auto& ri_contexts = out.ri_contexts;
  auto& domain_keys = out.domain_keys;
  auto& installed = out.installed;
  auto& by_content = out.by_content;

  bool have_identity = false;
  // Constraint state applies after every RO exists, independent of the
  // record order a caller hands us.
  std::vector<const store::Record*> state_records;

  for (const store::Record& rec : records) {
    const std::string_view key = rec.key;
    if (key == kIdentityKey) {
      xml::Element root = xml::parse(omadrm::to_string(rec.value));
      if (root.name() != "identity") {
        throw Error(ErrorKind::kFormat, "agent state: bad identity record");
      }
      device_id = root.require_attr("device-id");
      const xml::Element& k = root.require_child("device-key");
      rsa_key.n = bigint::BigInt("0x" + k.require_attr("n"));
      rsa_key.e = bigint::BigInt("0x" + k.require_attr("e"));
      rsa_key.d = bigint::BigInt("0x" + k.require_attr("d"));
      rsa_key.has_crt = k.attr("p") != nullptr;
      if (rsa_key.has_crt) {
        rsa_key.p = bigint::BigInt("0x" + k.require_attr("p"));
        rsa_key.q = bigint::BigInt("0x" + k.require_attr("q"));
        rsa_key.dp = bigint::BigInt("0x" + k.require_attr("dp"));
        rsa_key.dq = bigint::BigInt("0x" + k.require_attr("dq"));
        rsa_key.qinv = bigint::BigInt("0x" + k.require_attr("qinv"));
      }
      if (const xml::Element* cert = root.child("certificate")) {
        certificate_der = base64_decode(cert->text());
        certificate = pki::Certificate::from_der(certificate_der);
      }
      have_identity = true;
    } else if (key.starts_with("ri/")) {
      xml::Element e = xml::parse(omadrm::to_string(rec.value));
      if (e.name() != "ri-context") {
        throw Error(ErrorKind::kFormat, "agent state: bad ri record");
      }
      RiContext ctx;
      ctx.ri_id = e.require_attr("id");
      if (ctx.ri_id != key.substr(3)) {
        throw Error(ErrorKind::kFormat, "agent state: ri record key skew");
      }
      ctx.ri_url = e.require_attr("url");
      ctx.established_at = parse_u64_attr(e, "established");
      ctx.ri_chain.push_back(pki::Certificate::from_der(
          base64_decode(e.child_text("certificate"))));
      for (const xml::Element* ic : e.children_named("intermediate")) {
        ctx.ri_chain.push_back(
            pki::Certificate::from_der(base64_decode(ic->text())));
      }
      ri_contexts[ctx.ri_id] = std::move(ctx);
    } else if (key.starts_with("dom/")) {
      xml::Element e = xml::parse(omadrm::to_string(rec.value));
      if (e.name() != "domain-key") {
        throw Error(ErrorKind::kFormat, "agent state: bad domain record");
      }
      const std::string& domain_id = e.require_attr("id");
      if (domain_id != key.substr(4)) {
        // A skewed record would load under one id but be addressed (and
        // erased) under another — an undeletable stale domain key.
        throw Error(ErrorKind::kFormat,
                    "agent state: domain record key skew");
      }
      domain_keys[domain_id] = {
          base64_decode(e.text()),
          static_cast<std::uint32_t>(parse_u64_attr(e, "generation"))};
    } else if (key.starts_with("ro/")) {
      xml::Element e = xml::parse(omadrm::to_string(rec.value));
      if (e.name() != "installed-ro") {
        throw Error(ErrorKind::kFormat, "agent state: bad ro record");
      }
      roap::ProtectedRo ro =
          roap::ProtectedRo::from_xml(e.require_child("roap:protectedRO"));
      Bytes c2dev = base64_decode(e.child_text("c2dev"));
      const std::string ro_id = ro.rights.ro_id;
      if (ro_id != key.substr(3)) {
        throw Error(ErrorKind::kFormat, "agent state: ro record key skew");
      }
      const std::string content_id = ro.rights.content_id;
      auto [it, inserted] = installed.emplace(
          ro_id, InstalledRo(std::move(ro), std::move(c2dev)));
      if (!inserted) {
        throw Error(ErrorKind::kFormat, "agent state: duplicate RO");
      }
      by_content[content_id].push_back(ro_id);
    } else if (key.starts_with("st/")) {
      state_records.push_back(&rec);
    } else {
      throw Error(ErrorKind::kFormat,
                  "agent state: unknown record key '" + rec.key + "'");
    }
  }
  if (!have_identity) {
    throw Error(ErrorKind::kFormat, "agent state: missing identity record");
  }
  for (const store::Record* rec : state_records) {
    auto it = installed.find(rec->key.substr(3));
    if (it == installed.end()) {
      throw Error(ErrorKind::kFormat,
                  "agent state: constraint state for unknown RO '" +
                      rec->key + "'");
    }
    restore_enforcer_state(it->second.enforcer, rec->value);
  }
  return out;
}

void DrmAgent::adopt(ParsedState&& parsed) {
  device_id_ = std::move(parsed.device_id);
  key_ = std::move(parsed.rsa_key);
  certificate_der_ = std::move(parsed.certificate_der);
  certificate_ = std::move(parsed.certificate);
  ri_contexts_ = std::move(parsed.ri_contexts);
  domain_keys_ = std::move(parsed.domain_keys);
  installed_ = std::move(parsed.installed);
  by_content_ = std::move(parsed.by_content);
  // Verification verdicts belong to the pre-load identity; the loaded
  // contexts re-verify (and re-populate the cache) on first interaction.
  // Likewise the AES schedules: they derive from the replaced ROs' CEKs.
  chain_verifier_.clear();
  aes_cache_.clear();
}

void DrmAgent::load_from_records(
    const std::vector<store::Record>& records) {
  adopt(parse_records(records));
}

Result<> DrmAgent::bind_store_impl(store::StateStore& s,
                                   bool require_identity) {
  Result<std::vector<store::Record>> loaded = s.load();
  if (!loaded.ok()) return Result<>(loaded.code(), loaded.context());

  bool has_identity = false;
  for (const store::Record& rec : *loaded) {
    has_identity |= (rec.key == kIdentityKey);
  }
  if (has_identity) {
    try {
      load_from_records(*loaded);
    } catch (const Error& e) {
      // Unsealed fine but semantically unusable — same fail-closed class
      // as a structural corruption.
      return Result<>(StatusCode::kStoreCorrupt,
                      std::string("agent: store image malformed: ") +
                          e.what());
    }
    store_ = &s;
    return Result<>();
  }
  if (require_identity) {
    return Result<>(StatusCode::kNotProvisioned,
                    "agent: store holds no agent identity");
  }
  if (!loaded->empty()) {
    // Records but no identity: this is some other entity's store (or a
    // mangled image). Seeding would tx.clear() state that is not ours —
    // fail closed instead.
    return Result<>(StatusCode::kStoreCorrupt,
                    "agent: store holds foreign records, refusing to seed");
  }
  // Empty store: seed it with the agent's current state.
  store::Transaction tx;
  tx.clear();
  std::vector<store::Record> records = render_records();
  for (store::Record& rec : records) {
    tx.put(rec.key, std::move(rec.value));
  }
  Result<> committed = s.commit(tx);
  if (!committed.ok()) return committed;
  store_ = &s;
  return Result<>();
}

Result<> DrmAgent::bind_store(store::StateStore& s) {
  return bind_store_impl(s, /*require_identity=*/false);
}

Result<DrmAgent> DrmAgent::from_store(store::StateStore& s, Bytes kdev,
                                      pki::Certificate trust_root,
                                      provider::CryptoProvider& crypto,
                                      Rng& rng) {
  DrmAgent agent(FromStoreTag{}, std::move(trust_root), crypto, rng,
                 std::move(kdev));
  Result<> bound = agent.bind_store_impl(s, /*require_identity=*/true);
  if (!bound.ok()) return propagate<DrmAgent>(bound);
  return Result<DrmAgent>(std::move(agent));
}

Bytes DrmAgent::export_state() const {
  // The blob is K_DEV plus exactly the record set a bound store carries —
  // export/import and store snapshots can never drift because they are
  // the same encoding.
  xml::Element root("agent-state");
  root.add_text_child("kdev", base64_encode(kdev_));
  for (const store::Record& rec : render_records()) {
    xml::Element e("record");
    e.set_attr("key", rec.key);
    e.set_text(base64_encode(rec.value));
    root.add_child(std::move(e));
  }
  return to_bytes(root.serialize());
}

void DrmAgent::import_state(ByteView blob) {
  xml::Element root = xml::parse(omadrm::to_string(blob));
  if (root.name() != "agent-state") {
    throw Error(ErrorKind::kFormat, "agent state: wrong root element");
  }
  Bytes kdev = base64_decode(root.child_text("kdev"));
  std::vector<store::Record> records;
  for (const xml::Element& e : root.children()) {
    if (e.name() == "record") {
      records.push_back(
          store::Record{e.require_attr("key"), base64_decode(e.text())});
    } else if (e.name() != "kdev") {
      throw Error(ErrorKind::kFormat,
                  "agent state: unknown element <" + e.name() + ">");
    }
  }

  // Parse first (throws kFormat on malformed input), then commit, then
  // adopt: a refused commit must leave BOTH the live state and the
  // store at the predecessor's image — adopting before committing would
  // let the next reboot silently roll back the imported burns.
  ParsedState parsed = parse_records(records);

  if (store_ != nullptr) {
    // Full-image replacement: the store must mirror the imported state,
    // not blend it with the predecessor's records.
    store::Transaction tx;
    tx.clear();
    for (const store::Record& rec : records) {
      tx.put(rec.key, rec.value);
    }
    Result<> committed = store_->commit(tx);
    if (!committed.ok()) {
      throw Error(ErrorKind::kState,
                  "agent: store refused imported image: " +
                      committed.describe());
    }
  }

  adopt(std::move(parsed));
  kdev_ = std::move(kdev);
}

}  // namespace omadrm::agent
