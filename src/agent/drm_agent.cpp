#include "agent/drm_agent.h"

#include "agent/sessions.h"
#include "common/base64.h"
#include "common/error.h"

namespace omadrm::agent {

using omadrm::Error;
using omadrm::ErrorKind;
using roap::Status;

DrmAgent::DrmAgent(std::string device_id, pki::Certificate trust_root,
                   provider::CryptoProvider& crypto, Rng& rng,
                   std::size_t key_bits)
    : device_id_(std::move(device_id)),
      trust_root_(std::move(trust_root)),
      crypto_(crypto),
      rng_(rng),
      key_(rsa::generate_key(key_bits, rng)),
      kdev_(rng.bytes(16)),
      chain_verifier_(trust_root_,
                      pki::ChainVerifier::metered_verify(crypto)) {}

void DrmAgent::provision(pki::Certificate device_certificate) {
  if (!(device_certificate.subject_key().n == key_.n)) {
    throw Error(ErrorKind::kProtocol,
                "agent: certificate does not match device key");
  }
  certificate_ = std::move(device_certificate);
  certificate_der_ = certificate_.to_der();
}

const pki::Certificate& DrmAgent::certificate() const {
  if (certificate_der_.empty()) {
    throw Error(ErrorKind::kState, "agent: not provisioned");
  }
  return certificate_;
}

bool DrmAgent::has_ri_context(const std::string& ri_id) const {
  return ri_contexts_.count(ri_id) > 0;
}

const RiContext* DrmAgent::ri_context(const std::string& ri_id) const {
  auto it = ri_contexts_.find(ri_id);
  return it == ri_contexts_.end() ? nullptr : &it->second;
}

std::shared_ptr<const pki::ChainVerdict> DrmAgent::verify_chain_metered(
    const std::vector<pki::Certificate>& chain, std::uint64_t now) {
  return chain_verifier_.verify(chain, now);
}

AgentStatus DrmAgent::verify_ocsp_metered(const pki::OcspResponse& ocsp,
                                          const bigint::BigInt& expected_serial,
                                          ByteView expected_nonce,
                                          std::uint64_t now) {
  if (!(ocsp.serial() == expected_serial)) return AgentStatus::kOcspInvalid;
  if (!ct_equal(ocsp.nonce(), expected_nonce)) {
    return AgentStatus::kOcspInvalid;
  }
  if (ocsp.produced_at() > now || now - ocsp.produced_at() > kMaxOcspAge) {
    return AgentStatus::kOcspInvalid;
  }
  // Our profile has the CA sign OCSP responses with the root key.
  if (!crypto_.pss_verify(trust_root_.subject_key(), ocsp.tbs_der(),
                          ocsp.signature())) {
    return AgentStatus::kOcspInvalid;
  }
  if (ocsp.status() == pki::OcspCertStatus::kRevoked) {
    return AgentStatus::kCertificateRevoked;
  }
  if (ocsp.status() != pki::OcspCertStatus::kGood) {
    return AgentStatus::kOcspInvalid;
  }
  return AgentStatus::kOk;
}

Result<> DrmAgent::revalidate_context(RiContext& ctx, std::uint64_t now) {
  std::shared_ptr<const pki::ChainVerdict> verdict =
      chain_verifier_.revalidate(ctx.verified_chain, ctx.ri_chain, now);
  if (verdict->status != pki::CertStatus::kValid) {
    switch (verdict->status) {
      case pki::CertStatus::kExpired:
      case pki::CertStatus::kNotYetValid:
        return Result<>(AgentStatus::kRiContextExpired,
                        "RI certificate chain outside validity for " +
                            ctx.ri_id);
      case pki::CertStatus::kRevoked:
        return Result<>(AgentStatus::kCertificateRevoked,
                        "RI certificate revoked for " + ctx.ri_id);
      default:
        return Result<>(AgentStatus::kCertificateInvalid,
                        "RI certificate chain invalid for " + ctx.ri_id);
    }
  }
  ctx.verified_chain = std::move(verdict);
  return Result<>();
}

// ---------------------------------------------------------------------------
// Phase 1: Registration (4-pass ROAP)
// ---------------------------------------------------------------------------

roap::DeviceHello DrmAgent::make_device_hello(PendingRegistration& pending) {
  if (!is_provisioned()) {
    throw Error(ErrorKind::kState, "agent: not provisioned");
  }
  // Pass 1: capability advertisement (no cryptography, paper §2.4.1).
  roap::DeviceHello hello;
  hello.device_id = device_id_;
  hello.algorithms = {"SHA-1", "HMAC-SHA1", "AES-128-CBC", "AES-WRAP",
                      "RSA-1024", "RSA-PSS", "KDF2"};
  hello.device_nonce = rng_.bytes(roap::kNonceLen);
  pending.device_nonce = hello.device_nonce;
  return hello;
}

roap::RegistrationRequest DrmAgent::make_registration_request(
    const roap::RiHello& ri_hello, PendingRegistration& pending) {
  // Pass 3: signed RegistrationRequest carrying our certificate.
  roap::RegistrationRequest request;
  request.session_id = ri_hello.session_id;
  request.device_id = device_id_;
  request.device_nonce = pending.device_nonce;
  request.ri_nonce = ri_hello.ri_nonce;
  request.certificate_der = certificate_der_;
  request.ocsp_nonce = rng_.bytes(roap::kNonceLen);
  request.signature = crypto_.pss_sign(key_, request.payload(), rng_);
  pending.session_id = request.session_id;
  pending.ocsp_nonce = request.ocsp_nonce;
  return request;
}

Result<> DrmAgent::register_with(roap::Transport& transport,
                                 std::uint64_t now) {
  return RegistrationSession(*this, now).run(transport);
}

Result<> DrmAgent::accept_registration_response(
    const roap::RegistrationResponse& response,
    const PendingRegistration& pending, std::uint64_t now) {
  if (response.status != Status::kSuccess) {
    return Result<>(roap::status_code(response.status),
                    std::string("RI reported ") +
                        roap::to_string(response.status) +
                        " in RegistrationResponse");
  }
  if (response.session_id != pending.session_id) {
    return Result<>(AgentStatus::kNonceMismatch,
                    "RegistrationResponse for session '" +
                        response.session_id + "', ours is '" +
                        pending.session_id + "'");
  }

  // Verify the RI certificate chain (leaf + any intermediates) against
  // our trust root, through the verdict cache.
  std::vector<pki::Certificate> ri_chain;
  try {
    ri_chain.push_back(pki::Certificate::from_der(response.ri_certificate_der));
    for (const Bytes& der : response.ri_certificate_chain_der) {
      ri_chain.push_back(pki::Certificate::from_der(der));
    }
  } catch (const Error& e) {
    return Result<>(AgentStatus::kCertificateInvalid,
                    std::string("RI certificate unparseable: ") + e.what());
  }
  std::shared_ptr<const pki::ChainVerdict> verdict =
      verify_chain_metered(ri_chain, now);
  if (verdict->status == pki::CertStatus::kRevoked) {
    return Result<>(AgentStatus::kCertificateRevoked,
                    "RI certificate chain revoked");
  }
  if (verdict->status != pki::CertStatus::kValid) {
    return Result<>(AgentStatus::kCertificateInvalid,
                    "RI certificate chain failed validation");
  }
  const pki::Certificate& ri_cert = ri_chain.front();

  // Verify the stapled OCSP response for the RI certificate.
  pki::OcspResponse ocsp;
  try {
    ocsp = pki::OcspResponse::from_der(response.ocsp_response_der);
  } catch (const Error& e) {
    return Result<>(AgentStatus::kOcspInvalid,
                    std::string("stapled OCSP unparseable: ") + e.what());
  }
  AgentStatus ocsp_status =
      verify_ocsp_metered(ocsp, ri_cert.serial(), pending.ocsp_nonce, now);
  if (ocsp_status != AgentStatus::kOk) {
    if (ocsp_status == AgentStatus::kCertificateRevoked) {
      // A revoked chain must not keep serving cache hits.
      chain_verifier_.invalidate_serial(ri_cert.serial());
    }
    return Result<>(ocsp_status, "stapled OCSP response rejected");
  }

  // Verify the message signature with the (now trusted) RI key.
  if (!crypto_.pss_verify(ri_cert.subject_key(), response.payload(),
                          response.signature)) {
    return Result<>(AgentStatus::kSignatureInvalid,
                    "RegistrationResponse signature rejected");
  }

  RiContext ctx;
  ctx.ri_id = response.ri_id;
  ctx.ri_url = response.ri_url;
  ctx.ri_chain = std::move(ri_chain);
  ctx.verified_chain = std::move(verdict);
  ctx.established_at = now;
  ri_contexts_[ctx.ri_id] = std::move(ctx);
  return Result<>();
}

// ---------------------------------------------------------------------------
// Phase 2: Acquisition
// ---------------------------------------------------------------------------

roap::RoRequest DrmAgent::make_ro_request(const std::string& ri_id,
                                          const std::string& ro_id,
                                          Bytes& device_nonce) {
  roap::RoRequest request;
  request.device_id = device_id_;
  request.ri_id = ri_id;
  request.ro_id = ro_id;
  request.device_nonce = rng_.bytes(roap::kNonceLen);
  request.signature = crypto_.pss_sign(key_, request.payload(), rng_);
  device_nonce = request.device_nonce;
  return request;
}

Result<roap::ProtectedRo> DrmAgent::accept_ro_response(
    const roap::RoResponse& response, const std::string& ri_id,
    ByteView expected_nonce, std::uint64_t now) {
  // Bind the response to the session's requested RI before trusting any
  // field in it — a valid response from a *different* RI context must
  // not satisfy this exchange.
  if (response.ri_id != ri_id) {
    return Result<roap::ProtectedRo>(
        AgentStatus::kNonceMismatch,
        "ROResponse from '" + response.ri_id + "', session is with '" +
            ri_id + "'");
  }
  auto ctx = ri_contexts_.find(ri_id);
  if (ctx == ri_contexts_.end()) {
    return Result<roap::ProtectedRo>(AgentStatus::kNoRiContext,
                                     "no RI context for " + ri_id);
  }
  // Verify the context again at the moment of use — O(1) on the cached
  // verdict, a full chain walk when the caches are cold/disabled.
  Result<> valid = revalidate_context(ctx->second, now);
  if (!valid.ok()) return propagate<roap::ProtectedRo>(valid);

  if (response.status != Status::kSuccess) {
    return Result<roap::ProtectedRo>(
        roap::status_code(response.status),
        std::string("RI reported ") + roap::to_string(response.status) +
            " in ROResponse");
  }
  if (!ct_equal(response.device_nonce, expected_nonce)) {
    return Result<roap::ProtectedRo>(
        AgentStatus::kNonceMismatch,
        "ROResponse not bound to our request nonce");
  }
  if (!crypto_.pss_verify(ctx->second.ri_certificate().subject_key(),
                          response.payload(), response.signature)) {
    return Result<roap::ProtectedRo>(AgentStatus::kSignatureInvalid,
                                     "ROResponse signature rejected");
  }
  if (response.ros.empty()) {
    return Result<roap::ProtectedRo>(AgentStatus::kRiAborted,
                                     "ROResponse carried no RO");
  }
  return Result<roap::ProtectedRo>(response.ros.front());
}

Result<roap::ProtectedRo> DrmAgent::acquire_ro(roap::Transport& transport,
                                               const std::string& ri_id,
                                               const std::string& ro_id,
                                               std::uint64_t now) {
  return AcquisitionSession(*this, ri_id, ro_id, now).run(transport);
}

// ---------------------------------------------------------------------------
// Phase 3: Installation (paper §2.4.3 / Figure 3)
// ---------------------------------------------------------------------------

AgentStatus DrmAgent::install_ro(const roap::ProtectedRo& ro,
                                 std::uint64_t now) {
  (void)now;
  // Unwrap K_MAC || K_REK.
  Bytes kmac_krek;
  if (ro.is_domain_ro) {
    auto dk = domain_keys_.find(ro.domain_id);
    if (dk == domain_keys_.end()) return AgentStatus::kNoDomainKey;
    // A key of the wrong generation cannot unwrap this RO; require a
    // re-join instead of burning an unwrap that is guaranteed to fail.
    if (dk->second.second != ro.domain_generation) {
      return AgentStatus::kNoDomainKey;
    }
    auto unwrapped = crypto_.aes_unwrap(dk->second.first, ro.wrapped_keys);
    if (!unwrapped) return AgentStatus::kUnwrapFailed;
    kmac_krek = std::move(*unwrapped);
  } else {
    const std::size_t k = key_.byte_length();
    if (ro.wrapped_keys.size() < k + 24) return AgentStatus::kUnwrapFailed;
    // C1 -> RSADP -> Z -> KDF2 -> KEK (one RSA private-key operation).
    Bytes kek = crypto_.kem_decapsulate(
        key_, ByteView(ro.wrapped_keys).subspan(0, k));
    auto unwrapped =
        crypto_.aes_unwrap(kek, ByteView(ro.wrapped_keys).subspan(k));
    if (!unwrapped) return AgentStatus::kUnwrapFailed;
    kmac_krek = std::move(*unwrapped);
  }
  if (kmac_krek.size() != 32) return AgentStatus::kUnwrapFailed;
  ByteView kmac = ByteView(kmac_krek).subspan(0, 16);

  // RO integrity & authenticity (key-confirmation MAC).
  if (!crypto_.hmac_verify(kmac, ro.mac_payload(), ro.mac)) {
    return AgentStatus::kMacMismatch;
  }

  // RO signature: mandatory for Domain ROs, verified when present.
  if (ro.is_domain_ro || !ro.signature.empty()) {
    auto ctx = ri_contexts_.find(ro.ri_id);
    if (ctx == ri_contexts_.end()) return AgentStatus::kNoRiContext;
    if (ro.signature.empty() ||
        !crypto_.pss_verify(ctx->second.ri_certificate().subject_key(),
                            ro.signed_payload(), ro.signature)) {
      return AgentStatus::kRoSignatureInvalid;
    }
  }

  // Replace the PKI protection with the device key: C2dev (Figure 3).
  Bytes c2dev = crypto_.aes_wrap(kdev_, kmac_krek);

  const std::string& ro_id = ro.rights.ro_id;
  if (installed_.erase(ro_id) > 0) {
    // A replaced RO may carry a re-keyed CEK; its cached schedule dies
    // with it.
    aes_cache_.invalidate_ro(ro_id);
  }
  installed_.emplace(ro_id, InstalledRo(ro, std::move(c2dev)));
  auto& index = by_content_[ro.rights.content_id];
  bool known = false;
  for (const auto& id : index) known |= (id == ro_id);
  if (!known) index.push_back(ro_id);
  return AgentStatus::kOk;
}

const InstalledRo* DrmAgent::installed_ro(const std::string& ro_id) const {
  auto it = installed_.find(ro_id);
  return it == installed_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Phase 4: Consumption (paper §2.4.4 — every access)
// ---------------------------------------------------------------------------

ConsumeResult DrmAgent::consume(const dcf::Dcf& dcf,
                                rel::PermissionType permission,
                                std::uint64_t now,
                                std::uint64_t duration_secs) {
  ConsumeResult out;
  ContentSession session = open_content(dcf, permission, now, duration_secs);
  out.status = session.status();
  out.decision = session.decision();
  out.ro_id = session.ro_id();
  if (!session.ok()) return out;
  out.content = session.read_all();
  if (!session.ok()) {
    // Integrity failure surfaced at the final block (recorded size vs
    // actual padding): report it, hand out nothing.
    out.status = session.status();
    out.content.clear();
  }
  return out;
}

ContentSession DrmAgent::open_content(const dcf::Dcf& dcf,
                                      rel::PermissionType permission,
                                      std::uint64_t now,
                                      std::uint64_t duration_secs) {
  // The container hash is computed at most once per Dcf (cached); the
  // cost model still sees the paper's per-access hashing via the charge
  // inside open_content_impl.
  return open_content_impl(dcf.headers().content_id, dcf.hash(),
                           dcf.serialized_size(), dcf.iv(),
                           dcf.encrypted_payload(), dcf.plaintext_size(),
                           permission, now, duration_secs);
}

ContentSession DrmAgent::open_content(const dcf::DcfReader& dcf,
                                      rel::PermissionType permission,
                                      std::uint64_t now,
                                      std::uint64_t duration_secs) {
  return open_content_impl(dcf.content_id(), dcf.hash(), dcf.wire().size(),
                           dcf.iv(), dcf.encrypted_payload(),
                           dcf.plaintext_size(), permission, now,
                           duration_secs);
}

ContentSession DrmAgent::open_content_impl(
    std::string_view content_id, ByteView dcf_hash,
    std::size_t container_bytes, ByteView iv, ByteView payload,
    std::uint64_t plaintext_size, rel::PermissionType permission,
    std::uint64_t now, std::uint64_t duration_secs) {
  ContentSession session;
  auto index = by_content_.find(content_id);
  if (index == by_content_.end() || index->second.empty()) {
    session.status_ = AgentStatus::kNotInstalled;
    return session;
  }

  for (const std::string& ro_id : index->second) {
    InstalledRo& inst = installed_.at(ro_id);
    session.ro_id_ = ro_id;

    // Step 1: decrypt C2dev with K_DEV.
    auto kmac_krek = crypto_.aes_unwrap(kdev_, inst.c2dev);
    if (!kmac_krek || kmac_krek->size() != 32) {
      session.status_ = AgentStatus::kUnwrapFailed;
      return session;
    }
    ByteView kmac = ByteView(*kmac_krek).subspan(0, 16);
    ByteView krek = ByteView(*kmac_krek).subspan(16, 16);

    // Step 2: verify RO integrity via its MAC.
    if (!crypto_.hmac_verify(kmac, inst.ro.mac_payload(), inst.ro.mac)) {
      session.status_ = AgentStatus::kMacMismatch;
      return session;
    }

    // Step 3: verify DCF integrity against the hash in the RO. The hash
    // itself was computed once for the container (Dcf caches it, the
    // reader folds it into parsing); the paper's per-access hashing cost
    // is still charged to the cycle model.
    crypto_.charge_sha1(container_bytes);
    if (!ct_equal(dcf_hash, inst.ro.rights.dcf_hash)) {
      session.status_ = AgentStatus::kDcfHashMismatch;
      return session;
    }

    // REL constraint evaluation; try the next RO for this content when
    // this one denies (multiple ROs per DCF are legal, paper §2.4.3).
    rel::Decision decision =
        inst.enforcer.check_and_consume(permission, now, duration_secs);
    session.decision_ = decision;
    if (decision != rel::Decision::kGranted) {
      session.status_ = AgentStatus::kPermissionDenied;
      continue;
    }

    // Unlock the chain: K_REK -> K_CEK.
    auto kcek = crypto_.aes_unwrap(krek, inst.ro.enc_kcek);
    if (!kcek) {
      session.status_ = AgentStatus::kUnwrapFailed;
      return session;
    }

    // A container whose payload cannot possibly unpad to the recorded
    // plaintext size is inconsistent with the hash the RO bound.
    if (payload.size() <= plaintext_size ||
        payload.size() - plaintext_size > crypto::Aes::kBlockSize) {
      session.status_ = AgentStatus::kDcfHashMismatch;
      return session;
    }

    // One-time bulk-decrypt setup: cached key schedule (the per-access
    // AES-CBC cost is charged here; the chunked reads execute it through
    // the fused core) and the borrowed-ciphertext stream.
    session.aes_ = aes_cache_.get(*kcek, ro_id);
    crypto_.charge_aes_cbc_decrypt(payload.size());
    session.stream_ = crypto::CbcDecryptStream(*session.aes_, iv, payload);
    session.plaintext_size_ = plaintext_size;
    session.status_ = AgentStatus::kOk;
    return session;
  }
  return session;  // last denial
}

// ---------------------------------------------------------------------------
// Domains
// ---------------------------------------------------------------------------

roap::JoinDomainRequest DrmAgent::make_join_domain_request(
    const std::string& ri_id, const std::string& domain_id,
    Bytes& device_nonce) {
  roap::JoinDomainRequest request;
  request.device_id = device_id_;
  request.ri_id = ri_id;
  request.domain_id = domain_id;
  request.device_nonce = rng_.bytes(roap::kNonceLen);
  request.signature = crypto_.pss_sign(key_, request.payload(), rng_);
  device_nonce = request.device_nonce;
  return request;
}

Result<> DrmAgent::accept_join_domain_response(
    const roap::JoinDomainResponse& response, const std::string& ri_id,
    const std::string& domain_id, ByteView expected_nonce) {
  auto ctx = ri_contexts_.find(ri_id);
  if (ctx == ri_contexts_.end()) {
    return Result<>(AgentStatus::kNoRiContext, "no RI context for " + ri_id);
  }
  if (response.status != Status::kSuccess) {
    return Result<>(roap::status_code(response.status),
                    std::string("RI reported ") +
                        roap::to_string(response.status) +
                        " in JoinDomainResponse");
  }
  // Bind the response to this session: the echoed nonce proves freshness
  // (a replayed join cannot re-key the device) and the domain id proves
  // it answers *this* join, not an older one for another domain.
  if (!ct_equal(response.device_nonce, expected_nonce)) {
    return Result<>(AgentStatus::kNonceMismatch,
                    "JoinDomainResponse not bound to our request nonce");
  }
  if (response.domain_id != domain_id) {
    return Result<>(AgentStatus::kNonceMismatch,
                    "JoinDomainResponse for domain '" + response.domain_id +
                        "', requested '" + domain_id + "'");
  }
  if (!crypto_.pss_verify(ctx->second.ri_certificate().subject_key(),
                          response.payload(), response.signature)) {
    return Result<>(AgentStatus::kSignatureInvalid,
                    "JoinDomainResponse signature rejected");
  }

  const std::size_t k = key_.byte_length();
  if (response.wrapped_domain_key.size() < k + 24) {
    return Result<>(AgentStatus::kUnwrapFailed,
                    "wrapped domain key too short");
  }
  Bytes kek = crypto_.kem_decapsulate(
      key_, ByteView(response.wrapped_domain_key).subspan(0, k));
  auto domain_key =
      crypto_.aes_unwrap(kek, ByteView(response.wrapped_domain_key).subspan(k));
  if (!domain_key || domain_key->size() != 16) {
    return Result<>(AgentStatus::kUnwrapFailed,
                    "domain key failed AES-UNWRAP integrity check");
  }
  domain_keys_[response.domain_id] = {std::move(*domain_key),
                                      response.generation};
  return Result<>();
}

roap::LeaveDomainRequest DrmAgent::make_leave_domain_request(
    const std::string& ri_id, const std::string& domain_id,
    Bytes& device_nonce) {
  roap::LeaveDomainRequest request;
  request.device_id = device_id_;
  request.ri_id = ri_id;
  request.domain_id = domain_id;
  request.device_nonce = rng_.bytes(roap::kNonceLen);
  request.signature = crypto_.pss_sign(key_, request.payload(), rng_);
  device_nonce = request.device_nonce;
  return request;
}

Result<> DrmAgent::accept_leave_domain_response(
    const roap::LeaveDomainResponse& response, const std::string& ri_id,
    const std::string& domain_id, ByteView expected_nonce) {
  auto ctx = ri_contexts_.find(ri_id);
  if (ctx == ri_contexts_.end()) {
    return Result<>(AgentStatus::kNoRiContext, "no RI context for " + ri_id);
  }
  if (response.status != Status::kSuccess) {
    return Result<>(roap::status_code(response.status),
                    std::string("RI reported ") +
                        roap::to_string(response.status) +
                        " in LeaveDomainResponse");
  }
  if (!ct_equal(response.device_nonce, expected_nonce)) {
    return Result<>(AgentStatus::kNonceMismatch,
                    "LeaveDomainResponse not bound to our request nonce");
  }
  if (!crypto_.pss_verify(ctx->second.ri_certificate().subject_key(),
                          response.payload(), response.signature)) {
    return Result<>(AgentStatus::kSignatureInvalid,
                    "LeaveDomainResponse signature rejected");
  }

  // Compliance: discard K_D and uninstall this domain's Rights Objects.
  domain_keys_.erase(domain_id);
  for (auto it = installed_.begin(); it != installed_.end();) {
    if (it->second.ro.is_domain_ro && it->second.ro.domain_id == domain_id) {
      auto& index = by_content_[it->second.ro.rights.content_id];
      std::erase(index, it->first);
      aes_cache_.invalidate_ro(it->first);
      it = installed_.erase(it);
    } else {
      ++it;
    }
  }
  return Result<>();
}

Result<> DrmAgent::join_domain(roap::Transport& transport,
                               const std::string& ri_id,
                               const std::string& domain_id,
                               std::uint64_t now) {
  return DomainSession(*this, DomainSession::Kind::kJoin, ri_id, domain_id,
                       now)
      .run(transport);
}

Result<> DrmAgent::leave_domain(roap::Transport& transport,
                                const std::string& ri_id,
                                const std::string& domain_id,
                                std::uint64_t now) {
  return DomainSession(*this, DomainSession::Kind::kLeave, ri_id, domain_id,
                       now)
      .run(transport);
}

Result<roap::ProtectedRo> DrmAgent::handle_trigger(
    roap::Transport& transport, const roap::RoAcquisitionTrigger& trigger,
    std::uint64_t now) {
  if (!trigger.domain_id.empty() && !has_domain_key(trigger.domain_id)) {
    Result<> join = join_domain(transport, trigger.ri_id, trigger.domain_id,
                                now);
    if (!join.ok()) return propagate<roap::ProtectedRo>(join);
  }
  return acquire_ro(transport, trigger.ri_id, trigger.ro_id, now);
}

bool DrmAgent::has_domain_key(const std::string& domain_id) const {
  return domain_keys_.count(domain_id) > 0;
}

std::optional<std::uint32_t> DrmAgent::domain_generation(
    const std::string& domain_id) const {
  auto it = domain_keys_.find(domain_id);
  if (it == domain_keys_.end()) return std::nullopt;
  return it->second.second;
}

std::optional<std::uint32_t> DrmAgent::remaining_count(
    const std::string& ro_id, rel::PermissionType permission) const {
  auto it = installed_.find(ro_id);
  if (it == installed_.end()) return std::nullopt;
  return it->second.enforcer.remaining_count(permission);
}

// ---------------------------------------------------------------------------
// Persistence (secure-storage image)
// ---------------------------------------------------------------------------

namespace {

constexpr rel::PermissionType kAllPermissions[] = {
    rel::PermissionType::kPlay, rel::PermissionType::kDisplay,
    rel::PermissionType::kExecute, rel::PermissionType::kPrint,
    rel::PermissionType::kExport};

std::uint64_t parse_u64_attr(const xml::Element& e, const std::string& key) {
  const std::string& s = e.require_attr(key);
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      throw Error(ErrorKind::kFormat, "agent state: bad number " + s);
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

Bytes DrmAgent::export_state() const {
  xml::Element root("agent-state");
  root.set_attr("device-id", device_id_);

  // Identity: RSA private key (hex bignums) + K_DEV + certificate.
  xml::Element key("device-key");
  key.set_attr("n", key_.n.to_hex());
  key.set_attr("e", key_.e.to_hex());
  key.set_attr("d", key_.d.to_hex());
  if (key_.has_crt) {
    key.set_attr("p", key_.p.to_hex());
    key.set_attr("q", key_.q.to_hex());
    key.set_attr("dp", key_.dp.to_hex());
    key.set_attr("dq", key_.dq.to_hex());
    key.set_attr("qinv", key_.qinv.to_hex());
  }
  root.add_child(std::move(key));
  root.add_text_child("kdev", base64_encode(kdev_));
  if (!certificate_der_.empty()) {
    root.add_text_child("certificate", base64_encode(certificate_der_));
  }

  for (const auto& [id, ctx] : ri_contexts_) {
    xml::Element e("ri-context");
    e.set_attr("id", ctx.ri_id);
    e.set_attr("url", ctx.ri_url);
    e.set_attr("established", std::to_string(ctx.established_at));
    e.add_text_child("certificate",
                     base64_encode(ctx.ri_certificate().to_der()));
    // Intermediates beyond the leaf (ri_chain[0] is the certificate above).
    for (std::size_t i = 1; i < ctx.ri_chain.size(); ++i) {
      e.add_text_child("intermediate",
                       base64_encode(ctx.ri_chain[i].to_der()));
    }
    root.add_child(std::move(e));
  }

  for (const auto& [id, entry] : domain_keys_) {
    xml::Element e("domain-key");
    e.set_attr("id", id);
    e.set_attr("generation", std::to_string(entry.second));
    e.set_text(base64_encode(entry.first));
    root.add_child(std::move(e));
  }

  for (const auto& [ro_id, inst] : installed_) {
    xml::Element e("installed-ro");
    e.add_child(inst.ro.to_xml());
    e.add_text_child("c2dev", base64_encode(inst.c2dev));
    for (rel::PermissionType p : kAllPermissions) {
      rel::RightsEnforcer::State s = inst.enforcer.state(p);
      if (s == rel::RightsEnforcer::State{}) continue;
      xml::Element st("state");
      st.set_attr("permission", rel::to_string(p));
      st.set_attr("used", std::to_string(s.used));
      if (s.first_use) {
        st.set_attr("first-use", std::to_string(*s.first_use));
      }
      st.set_attr("accumulated", std::to_string(s.accumulated));
      e.add_child(std::move(st));
    }
    root.add_child(std::move(e));
  }

  return to_bytes(root.serialize());
}

void DrmAgent::import_state(ByteView blob) {
  xml::Element root = xml::parse(omadrm::to_string(blob));
  if (root.name() != "agent-state") {
    throw Error(ErrorKind::kFormat, "agent state: wrong root element");
  }

  device_id_ = root.require_attr("device-id");

  const xml::Element& key = root.require_child("device-key");
  key_.n = bigint::BigInt("0x" + key.require_attr("n"));
  key_.e = bigint::BigInt("0x" + key.require_attr("e"));
  key_.d = bigint::BigInt("0x" + key.require_attr("d"));
  key_.has_crt = key.attr("p") != nullptr;
  if (key_.has_crt) {
    key_.p = bigint::BigInt("0x" + key.require_attr("p"));
    key_.q = bigint::BigInt("0x" + key.require_attr("q"));
    key_.dp = bigint::BigInt("0x" + key.require_attr("dp"));
    key_.dq = bigint::BigInt("0x" + key.require_attr("dq"));
    key_.qinv = bigint::BigInt("0x" + key.require_attr("qinv"));
  }
  kdev_ = base64_decode(root.child_text("kdev"));
  if (const xml::Element* cert = root.child("certificate")) {
    certificate_der_ = base64_decode(cert->text());
    certificate_ = pki::Certificate::from_der(certificate_der_);
  } else {
    certificate_der_.clear();
  }

  ri_contexts_.clear();
  domain_keys_.clear();
  installed_.clear();
  by_content_.clear();
  // Verification verdicts belong to the pre-import identity; the imported
  // contexts re-verify (and re-populate the cache) on first interaction.
  // Likewise the AES schedules: they derive from the replaced ROs' CEKs.
  chain_verifier_.clear();
  aes_cache_.clear();

  for (const xml::Element& e : root.children()) {
    if (e.name() == "ri-context") {
      RiContext ctx;
      ctx.ri_id = e.require_attr("id");
      ctx.ri_url = e.require_attr("url");
      ctx.established_at = parse_u64_attr(e, "established");
      ctx.ri_chain.push_back(pki::Certificate::from_der(
          base64_decode(e.child_text("certificate"))));
      for (const xml::Element* ic : e.children_named("intermediate")) {
        ctx.ri_chain.push_back(
            pki::Certificate::from_der(base64_decode(ic->text())));
      }
      ri_contexts_[ctx.ri_id] = std::move(ctx);
    } else if (e.name() == "domain-key") {
      domain_keys_[e.require_attr("id")] = {
          base64_decode(e.text()),
          static_cast<std::uint32_t>(parse_u64_attr(e, "generation"))};
    } else if (e.name() == "installed-ro") {
      roap::ProtectedRo ro =
          roap::ProtectedRo::from_xml(e.require_child("roap:protectedRO"));
      Bytes c2dev = base64_decode(e.child_text("c2dev"));
      const std::string ro_id = ro.rights.ro_id;
      const std::string content_id = ro.rights.content_id;
      auto [it, inserted] =
          installed_.emplace(ro_id, InstalledRo(std::move(ro),
                                                std::move(c2dev)));
      if (!inserted) {
        throw Error(ErrorKind::kFormat, "agent state: duplicate RO");
      }
      for (const xml::Element* st : e.children_named("state")) {
        auto p = rel::permission_from_string(st->require_attr("permission"));
        if (!p) {
          throw Error(ErrorKind::kFormat, "agent state: bad permission");
        }
        rel::RightsEnforcer::State s;
        s.used =
            static_cast<std::uint32_t>(parse_u64_attr(*st, "used"));
        if (st->attr("first-use")) {
          s.first_use = parse_u64_attr(*st, "first-use");
        }
        s.accumulated = parse_u64_attr(*st, "accumulated");
        it->second.enforcer.restore_state(*p, s);
      }
      by_content_[content_id].push_back(ro_id);
    }
  }
}

}  // namespace omadrm::agent
