// Agent-side ROAP session state machines.
//
// Each session object drives exactly one protocol exchange and owns all
// of its pending state (device nonces, the ROAP session id, the OCSP
// nonce). That ownership is the fix for the historical pending-nonce
// leak: a handshake abandoned mid-flight — transport drop, user
// cancellation, superseding retry — is cleaned up by the session's
// destructor instead of lingering in agent-global maps forever.
//
// Two ways to drive a session:
//
//   run(transport)          one call; the session performs every pass
//                           over the transport and classifies transport
//                           exceptions into Result failures.
//
//   the per-pass halves     hello()/request()/conclude() expose each
//                           message so the envelopes can travel over any
//                           channel — in particular via another device
//                           acting as proxy, which is how the standard's
//                           "Unconnected Devices" (portable players that
//                           cannot reach the RI, paper §2.3) participate.
//
// Calling a half out of order is a programming error and throws
// omadrm::Error(kProtocol). Bad *peer* behaviour (malformed envelope,
// wrong message type, failed verification) is an expected runtime
// outcome and comes back as a failed Result. Terminal outcomes (an
// authoritative RI refusal, a failed certificate verdict) park the
// session in State::kFailed; *retriable* outcomes — the lost, stale, or
// damaged deliveries roap::RetryPolicy::classify names — leave the
// state machine where it was, so the same pass can be driven again with
// a fresh delivery of the same request.
//
// The run(transport, policy, rng) overloads do exactly that: each pass
// is retried with backoff under the policy's attempt/deadline budget,
// and a registration whose pending RI session expired mid-flight
// (Status::kSessionExpired) is restarted from DeviceHello with fresh
// nonces, up to policy.max_restarts times. The plain run(transport)
// keeps the historical single-shot semantics: any failed pass parks the
// session in kFailed and a fresh session must be started (retry = new
// nonces, never reuse).
#pragma once

#include <cstdint>
#include <string>

#include "agent/drm_agent.h"
#include "common/random.h"
#include "common/result.h"
#include "roap/envelope.h"
#include "roap/retry.h"
#include "roap/transport.h"

namespace omadrm::agent {

/// 4-pass registration: DeviceHello → RIHello → RegistrationRequest →
/// RegistrationResponse. Success establishes/refreshes the RI Context.
class RegistrationSession {
 public:
  enum class State : std::uint8_t {
    kStart,
    kAwaitRiHello,
    kAwaitResponse,
    kComplete,
    kFailed,
  };

  RegistrationSession(DrmAgent& agent, std::uint64_t now);

  State state() const { return state_; }

  /// Pass 1: the DeviceHello envelope (records the device nonce).
  Result<roap::Envelope> hello();
  /// Pass 3: consumes the RIHello, returns the signed RegistrationRequest.
  Result<roap::Envelope> request(const roap::Envelope& ri_hello);
  Result<roap::Envelope> request(const roap::RiHello& ri_hello);
  /// Pass 4: verifies the RegistrationResponse (chain, OCSP, signature)
  /// and persists the RI Context.
  Result<> conclude(const roap::Envelope& response);
  Result<> conclude(const roap::RegistrationResponse& response);

  /// Drives all four passes over the transport (single-shot: any failed
  /// pass parks the session in kFailed).
  Result<> run(roap::Transport& transport);

  /// Fault-tolerant drive: each pass is retried under `policy` (backoff
  /// paced by `rng` on `clock`, or a deterministic VirtualRetryClock when
  /// null), resending the *same* request on a retriable outcome. When the
  /// RI answers kSessionExpired — its pending session died while we
  /// retried — the whole handshake restarts from DeviceHello with fresh
  /// nonces, up to policy.max_restarts times. Fails with kTimeout /
  /// kRetriesExhausted (attempt counts in the context) when the budget
  /// runs out.
  Result<> run(roap::Transport& transport, const roap::RetryPolicy& policy,
               Rng& rng, roap::RetryClock* clock = nullptr);

 private:
  /// Back to kStart with no pending state — the restart-from-DeviceHello
  /// edge of the policy driver.
  void reset();

  DrmAgent& agent_;
  std::uint64_t now_;
  State state_ = State::kStart;
  DrmAgent::PendingRegistration pending_;
};

/// 2-pass RO acquisition: RORequest → ROResponse against an established
/// RI context.
class AcquisitionSession {
 public:
  enum class State : std::uint8_t {
    kStart,
    kAwaitResponse,
    kComplete,
    kFailed,
  };

  AcquisitionSession(DrmAgent& agent, std::string ri_id, std::string ro_id,
                     std::uint64_t now);

  State state() const { return state_; }

  /// Revalidates the RI context (cached chain verdict) and returns the
  /// signed RORequest.
  Result<roap::Envelope> request();
  /// Verifies the ROResponse (context revalidation, nonce binding,
  /// signature) and yields the protected RO.
  Result<roap::ProtectedRo> conclude(const roap::Envelope& response);
  Result<roap::ProtectedRo> conclude(const roap::RoResponse& response);

  Result<roap::ProtectedRo> run(roap::Transport& transport);

  /// Fault-tolerant drive of the single request/response pass (see
  /// RegistrationSession::run(policy) for the retry semantics).
  Result<roap::ProtectedRo> run(roap::Transport& transport,
                                const roap::RetryPolicy& policy, Rng& rng,
                                roap::RetryClock* clock = nullptr);

 private:
  DrmAgent& agent_;
  std::string ri_id_;
  std::string ro_id_;
  std::uint64_t now_;
  State state_ = State::kStart;
  Bytes device_nonce_;
};

/// 2-pass domain membership change (join or leave). On a successful
/// leave the agent discards K_D and uninstalls that domain's ROs.
class DomainSession {
 public:
  enum class Kind : std::uint8_t { kJoin, kLeave };
  enum class State : std::uint8_t {
    kStart,
    kAwaitResponse,
    kComplete,
    kFailed,
  };

  DomainSession(DrmAgent& agent, Kind kind, std::string ri_id,
                std::string domain_id, std::uint64_t now);

  Kind kind() const { return kind_; }
  State state() const { return state_; }

  Result<roap::Envelope> request();
  Result<> conclude(const roap::Envelope& response);

  Result<> run(roap::Transport& transport);

  /// Fault-tolerant drive of the single request/response pass (see
  /// RegistrationSession::run(policy) for the retry semantics).
  Result<> run(roap::Transport& transport, const roap::RetryPolicy& policy,
               Rng& rng, roap::RetryClock* clock = nullptr);

 private:
  DrmAgent& agent_;
  Kind kind_;
  std::string ri_id_;
  std::string domain_id_;
  std::uint64_t now_;
  State state_ = State::kStart;
  Bytes device_nonce_;
};

}  // namespace omadrm::agent
