// CryptoProvider — the seam between the DRM protocol stack and the
// cryptographic substrate.
//
// Every cryptographic operation the Rights Issuer, Content Issuer, or DRM
// Agent performs goes through this interface. That is what makes the
// paper's experiment possible in code: the terminal (DRM Agent) is handed
// a *metered* provider (model/metered.h) that executes the real algorithms
// AND charges their cost to a cycle ledger under the selected architecture
// profile, while the network-side actors use the plain provider. Tests
// also hook this seam for fault injection.
#pragma once

#include <optional>

#include "common/bytes.h"
#include "common/random.h"
#include "rsa/kem.h"
#include "rsa/rsa.h"

namespace omadrm::provider {

class CryptoProvider {
 public:
  virtual ~CryptoProvider() = default;

  // -- hash / MAC ---------------------------------------------------------
  virtual Bytes sha1(ByteView data) = 0;
  virtual Bytes hmac_sha1(ByteView key, ByteView data) = 0;
  virtual bool hmac_verify(ByteView key, ByteView data, ByteView tag) = 0;

  // -- symmetric ----------------------------------------------------------
  virtual Bytes aes_cbc_encrypt(ByteView key, ByteView iv,
                                ByteView plaintext) = 0;
  virtual Bytes aes_cbc_decrypt(ByteView key, ByteView iv,
                                ByteView ciphertext) = 0;
  virtual Bytes aes_wrap(ByteView kek, ByteView key_data) = 0;
  virtual std::optional<Bytes> aes_unwrap(ByteView kek, ByteView wrapped) = 0;
  virtual Bytes kdf2(ByteView z, std::size_t out_len) = 0;

  // -- streaming-content accounting ----------------------------------------
  // The steady-state content path (agent/content_session.h) executes bulk
  // SHA-1 and AES-CBC outside this interface — cached key schedules,
  // caller-owned buffers, hashes folded into container parsing — and
  // reports the work here instead, so a metering provider can still
  // charge the paper's per-access §2.4.4 costs. The base implementation
  // ignores the reports.
  virtual void charge_sha1(std::size_t data_len) { (void)data_len; }
  virtual void charge_aes_cbc_decrypt(std::size_t ciphertext_len) {
    (void)ciphertext_len;
  }

  // -- PKI ----------------------------------------------------------------
  virtual Bytes pss_sign(const rsa::PrivateKey& key, ByteView message,
                         Rng& rng) = 0;
  virtual bool pss_verify(const rsa::PublicKey& key, ByteView message,
                          ByteView signature) = 0;
  virtual rsa::KemEncapsulation kem_encapsulate(const rsa::PublicKey& key,
                                                Rng& rng) = 0;
  virtual Bytes kem_decapsulate(const rsa::PrivateKey& key, ByteView c1) = 0;
};

/// Forwards directly to the substrate with no accounting.
class PlainCryptoProvider : public CryptoProvider {
 public:
  Bytes sha1(ByteView data) override;
  Bytes hmac_sha1(ByteView key, ByteView data) override;
  bool hmac_verify(ByteView key, ByteView data, ByteView tag) override;
  Bytes aes_cbc_encrypt(ByteView key, ByteView iv,
                        ByteView plaintext) override;
  Bytes aes_cbc_decrypt(ByteView key, ByteView iv,
                        ByteView ciphertext) override;
  Bytes aes_wrap(ByteView kek, ByteView key_data) override;
  std::optional<Bytes> aes_unwrap(ByteView kek, ByteView wrapped) override;
  Bytes kdf2(ByteView z, std::size_t out_len) override;
  Bytes pss_sign(const rsa::PrivateKey& key, ByteView message,
                 Rng& rng) override;
  bool pss_verify(const rsa::PublicKey& key, ByteView message,
                  ByteView signature) override;
  rsa::KemEncapsulation kem_encapsulate(const rsa::PublicKey& key,
                                        Rng& rng) override;
  Bytes kem_decapsulate(const rsa::PrivateKey& key, ByteView c1) override;
};

/// Process-wide stateless plain provider (safe to share).
PlainCryptoProvider& plain_provider();

}  // namespace omadrm::provider
