#include "provider/provider.h"

#include "crypto/aes_wrap.h"
#include "crypto/hmac.h"
#include "crypto/kdf2.h"
#include "crypto/modes.h"
#include "crypto/sha1.h"
#include "rsa/pss.h"

namespace omadrm::provider {

Bytes PlainCryptoProvider::sha1(ByteView data) {
  return crypto::Sha1::hash(data);
}

Bytes PlainCryptoProvider::hmac_sha1(ByteView key, ByteView data) {
  return crypto::HmacSha1::mac(key, data);
}

bool PlainCryptoProvider::hmac_verify(ByteView key, ByteView data,
                                      ByteView tag) {
  return crypto::HmacSha1::verify(key, data, tag);
}

Bytes PlainCryptoProvider::aes_cbc_encrypt(ByteView key, ByteView iv,
                                           ByteView plaintext) {
  return crypto::aes_cbc_encrypt(key, iv, plaintext);
}

Bytes PlainCryptoProvider::aes_cbc_decrypt(ByteView key, ByteView iv,
                                           ByteView ciphertext) {
  return crypto::aes_cbc_decrypt(key, iv, ciphertext);
}

Bytes PlainCryptoProvider::aes_wrap(ByteView kek, ByteView key_data) {
  return crypto::aes_wrap(kek, key_data);
}

std::optional<Bytes> PlainCryptoProvider::aes_unwrap(ByteView kek,
                                                     ByteView wrapped) {
  return crypto::aes_unwrap(kek, wrapped);
}

Bytes PlainCryptoProvider::kdf2(ByteView z, std::size_t out_len) {
  return crypto::kdf2_sha1(z, out_len);
}

Bytes PlainCryptoProvider::pss_sign(const rsa::PrivateKey& key,
                                    ByteView message, Rng& rng) {
  return rsa::pss_sign(key, message, rng);
}

bool PlainCryptoProvider::pss_verify(const rsa::PublicKey& key,
                                     ByteView message, ByteView signature) {
  return rsa::pss_verify(key, message, signature);
}

rsa::KemEncapsulation PlainCryptoProvider::kem_encapsulate(
    const rsa::PublicKey& key, Rng& rng) {
  return rsa::kem_encapsulate(key, rng);
}

Bytes PlainCryptoProvider::kem_decapsulate(const rsa::PrivateKey& key,
                                           ByteView c1) {
  return rsa::kem_decapsulate(key, c1);
}

PlainCryptoProvider& plain_provider() {
  static PlainCryptoProvider instance;
  return instance;
}

}  // namespace omadrm::provider
