#include "roap/transport.h"

#include "common/error.h"
#include "ri/rights_issuer.h"

namespace omadrm::roap {

using omadrm::Error;
using omadrm::ErrorKind;

// ---------------------------------------------------------------------------
// InProcessTransport
// ---------------------------------------------------------------------------

InProcessTransport::InProcessTransport(ri::RightsIssuer& ri,
                                       std::uint64_t now)
    : ri_(ri), now_(now) {}

Envelope InProcessTransport::request(const Envelope& request) {
  // The serialize→parse round trip is intrinsic to the envelope now:
  // wrap() parses its own serialized bytes, so the request the RI opens
  // and the response handed back here are both DOMs of wire bytes — no
  // re-serialization is needed to preserve the boundary semantics.
  return ri_.handle(request, now_);
}

Envelope InProcessTransport::request_raw(std::string_view wire) {
  // The bytes go to the RI's wire entry point unexamined — client-side
  // parsing would reject damaged documents before the server ever saw
  // them, which no real network does.
  return Envelope::from_wire(ri_.handle_wire(std::string(wire), now_));
}

// ---------------------------------------------------------------------------
// FaultyTransport
// ---------------------------------------------------------------------------

FaultyTransport::FaultyTransport(Transport& inner, Rng& rng)
    : inner_(inner), rng_(rng) {}

void FaultyTransport::inject(Fault fault) { injected_.push_back(fault); }

void FaultyTransport::set_schedule(std::vector<Fault> schedule) {
  schedule_.assign(schedule.begin(), schedule.end());
}

FaultyTransport::Fault FaultyTransport::next_fault() {
  if (!injected_.empty()) {
    Fault f = injected_.front();
    injected_.pop_front();
    return f;
  }
  if (!schedule_.empty()) {
    Fault f = schedule_.front();
    schedule_.pop_front();
    ++stats_.scheduled;
    return f;
  }
  // Probabilistic mode with 1/2^32 resolution; the four rates slice one
  // uniform draw so each request suffers at most one fault.
  const double draw =
      static_cast<double>(rng_.uniform(std::uint64_t{1} << 32)) /
      static_cast<double>(std::uint64_t{1} << 32);
  if (draw < drop_rate_) {
    return rng_.uniform(2) == 0 ? Fault::kDropRequest : Fault::kDropResponse;
  }
  double band = drop_rate_ + corrupt_rate_;
  if (draw < band) return Fault::kCorruptResponse;
  band += replay_rate_;
  if (draw < band) return Fault::kReplayResponse;
  band += delay_rate_;
  if (draw < band) return Fault::kDelayResponse;
  return Fault::kNone;
}

std::string FaultyTransport::corrupt(std::string wire) {
  if (wire.empty()) return wire;
  // A short burst error: flip 1–4 bytes somewhere in the document.
  const std::size_t flips = 1 + rng_.uniform(4);
  for (std::size_t i = 0; i < flips; ++i) {
    const std::size_t pos = rng_.uniform(wire.size());
    wire[pos] = static_cast<char>(wire[pos] ^
                                  static_cast<char>(1 + rng_.uniform(255)));
  }
  return wire;
}

Envelope FaultyTransport::request(const Envelope& request) {
  ++stats_.requests;
  const Fault fault = next_fault();
  fault_log_.push_back(fault);

  switch (fault) {
    case Fault::kDropRequest:
      ++stats_.dropped;
      throw Error(ErrorKind::kTransport, "transport: request lost");

    case Fault::kReplayResponse:
      if (last_response_) {
        ++stats_.replayed;
        ++stats_.delivered;  // the caller does receive (stale) bytes
        return *last_response_;
      }
      break;  // nothing captured yet: deliver honestly

    case Fault::kCorruptRequest: {
      ++stats_.corrupted;
      // The mangled bytes are shipped through the raw seam, so they
      // genuinely reach the peer's parser over any inner transport —
      // in-process or socket. Whatever the peer makes of them, the
      // caller gets no usable answer — the bytes no longer parse, the
      // peer refuses the document, or a server refusal frame comes
      // back. All of it surfaces as a lost exchange.
      try {
        (void)inner_.request_raw(corrupt(request.wire()));
      } catch (const Error&) {
      }
      throw Error(ErrorKind::kTransport,
                  "transport: request corrupted in transit");
    }

    default:
      break;
  }

  Envelope response = inner_.request(request);

  switch (fault) {
    case Fault::kDropResponse:
      // The RI processed the request (state may have changed server-side)
      // but the caller never hears back.
      ++stats_.dropped;
      throw Error(ErrorKind::kTransport, "transport: response lost");

    case Fault::kCorruptResponse: {
      ++stats_.corrupted;
      // May throw kFormat (bytes no longer parse) or yield an envelope
      // whose signature/nonce checks fail downstream — the agent must
      // fail closed either way.
      response = Envelope::from_wire(corrupt(response.wire()));
      break;
    }

    case Fault::kDelayResponse:
      ++stats_.delayed;
      delayed_.push_back(std::move(response));
      throw Error(ErrorKind::kTransport,
                  "transport: response delayed past timeout");

    default:
      break;
  }

  // Reordered delivery: while delayed responses are queued, the caller
  // receives the oldest one and the fresh response joins the queue.
  if (!delayed_.empty()) {
    delayed_.push_back(std::move(response));
    response = std::move(delayed_.front());
    delayed_.pop_front();
  }

  last_response_ = response;
  ++stats_.delivered;
  return response;
}

}  // namespace omadrm::roap
