// ROAP — the Rights Object Acquisition Protocol (OMA DRM 2 §ROAP).
//
// Message set implemented here, as XML documents exchanged between the DRM
// Agent and the Rights Issuer:
//
//   4-pass Registration:  DeviceHello → RiHello →
//                         RegistrationRequest → RegistrationResponse
//   2-pass RO acquisition: RoRequest → RoResponse
//   2-pass domain join:    JoinDomainRequest → JoinDomainResponse
//
// Requests from the device and responses from the RI are signed with
// RSASSA-PSS over the canonical serialization of the message *without* its
// <signature> element — the terminal-side sign/verify operations are
// precisely the RSA private/public ops the paper's registration and
// acquisition phases charge (DESIGN.md §4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "rel/rights.h"
#include "xml/xml.h"

namespace omadrm::roap {

/// ROAP nonces: 14 random bytes (the spec's default size).
inline constexpr std::size_t kNonceLen = 14;

enum class Status : std::uint8_t {
  kSuccess,
  kAbort,
  kNotRegistered,
  kSignatureInvalid,
  kUnknownRoId,
  kAccessDenied,
  /// The pending registration session named by the request no longer
  /// exists (TTL garbage collection, supersession, or an RI restart that
  /// lost the RAM-only half). Distinct from kAbort so a retrying device
  /// knows to restart cleanly from DeviceHello with fresh nonces instead
  /// of treating the handshake as refused.
  kSessionExpired,
  /// The RI's durable store refused the commit this request required; no
  /// state changed and no grant was made. Retriable: the device may try
  /// again once the store recovers. Stateless service is unaffected.
  kStoreFailure,
};

const char* to_string(Status s);
Status status_from_string(std::string_view s);

/// Maps a wire-level status into the unified code space of
/// omadrm::StatusCode (kSuccess -> kOk, kAbort -> kRiAborted, the rest
/// one-to-one). Callers attach direction context ("reported by RI") via
/// Result's context string.
omadrm::StatusCode status_code(Status s);

// ---------------------------------------------------------------------------
// Protected Rights Object (paper Figure 2/3): rights + C = C1‖C2 + MAC +
// optional RI signature (mandatory for Domain ROs).
// ---------------------------------------------------------------------------
struct ProtectedRo {
  rel::Rights rights;
  /// Device RO: C = C1 (RSA-KEM, key-length bytes) ‖ C2 (AES-WRAP of
  /// K_MAC‖K_REK under the KDF2-derived KEK). Domain RO: a single AES-WRAP
  /// of K_MAC‖K_REK under the domain key K_D (no RSA — that is what lets
  /// every domain member unwrap it, paper §2.3).
  Bytes wrapped_keys;
  /// E_KREK(K_CEK): the content key wrapped under the rights key — the
  /// two-layer chain of the paper's Figure 2 that decouples content from
  /// rights without re-encrypting the DCF.
  Bytes enc_kcek;
  Bytes mac;        // HMAC-SHA1 over mac_payload() with K_MAC
  Bytes signature;  // optional RSASSA-PSS by the RI over signed_payload()
  std::string ri_id;
  bool is_domain_ro = false;
  std::string domain_id;
  /// Domain key generation this RO was wrapped under; a device holding an
  /// older generation must re-join before it can install the RO.
  std::uint32_t domain_generation = 0;

  /// Canonical bytes covered by the MAC (rights + wrapped keys + identity).
  Bytes mac_payload() const;
  /// Canonical bytes covered by the RI signature (mac_payload + mac).
  Bytes signed_payload() const;

  bool operator==(const ProtectedRo&) const = default;
  xml::Element to_xml() const;
  /// Streams `<roap:protectedRO>` into `w` — identical bytes to
  /// to_xml().serialize(), with no Element tree or temporaries.
  void write(xml::Writer& w) const;
  static ProtectedRo from_xml(const xml::Element& e);
  static ProtectedRo from_node(const xml::Node& e);
};

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------
struct DeviceHello {
  std::string device_id;
  std::vector<std::string> algorithms;  // advertised capabilities
  Bytes device_nonce;

  bool operator==(const DeviceHello&) const = default;
  xml::Element to_xml() const;
  void write(xml::Writer& w) const;
  static DeviceHello from_xml(const xml::Element& e);
  static DeviceHello from_node(const xml::Node& e);
};

struct RiHello {
  Status status = Status::kSuccess;
  std::string ri_id;
  std::string session_id;
  std::vector<std::string> algorithms;  // selected algorithms
  Bytes ri_nonce;

  bool operator==(const RiHello&) const = default;
  xml::Element to_xml() const;
  void write(xml::Writer& w) const;
  static RiHello from_xml(const xml::Element& e);
  static RiHello from_node(const xml::Node& e);
};

struct RegistrationRequest {
  std::string session_id;
  std::string device_id;
  Bytes device_nonce;
  Bytes ri_nonce;        // echoed from RiHello (freshness binding)
  Bytes certificate_der;  // the device certificate
  Bytes ocsp_nonce;       // nonce the RI must use in the stapled response
  Bytes signature;

  /// Bytes the signature covers (message without <signature>).
  Bytes payload() const;
  bool operator==(const RegistrationRequest&) const = default;
  xml::Element to_xml() const;
  void write(xml::Writer& w) const;
  /// Streams the message without its <roap:signature> element — the
  /// canonical byte string the signature covers.
  void write_payload(xml::Writer& w) const;
  static RegistrationRequest from_xml(const xml::Element& e);
  static RegistrationRequest from_node(const xml::Node& e);
};

struct RegistrationResponse {
  Status status = Status::kSuccess;
  std::string session_id;
  std::string ri_id;
  std::string ri_url;
  Bytes ri_certificate_der;
  /// Intermediate CA certificates completing the chain from the RI
  /// certificate up to (but excluding) the device's trust root, closest
  /// to the leaf first. Empty when the root signed the RI directly.
  std::vector<Bytes> ri_certificate_chain_der;
  Bytes ocsp_response_der;  // stapled OCSP response for the RI cert
  Bytes signature;

  Bytes payload() const;
  bool operator==(const RegistrationResponse&) const = default;
  xml::Element to_xml() const;
  void write(xml::Writer& w) const;
  /// Streams the message without its <roap:signature> element — the
  /// canonical byte string the signature covers.
  void write_payload(xml::Writer& w) const;
  static RegistrationResponse from_xml(const xml::Element& e);
  static RegistrationResponse from_node(const xml::Node& e);
};

// ---------------------------------------------------------------------------
// RO acquisition
// ---------------------------------------------------------------------------
struct RoRequest {
  std::string device_id;
  std::string ri_id;
  std::string ro_id;
  std::string domain_id;  // empty for device ROs
  Bytes device_nonce;
  Bytes signature;

  Bytes payload() const;
  bool operator==(const RoRequest&) const = default;
  xml::Element to_xml() const;
  void write(xml::Writer& w) const;
  /// Streams the message without its <roap:signature> element — the
  /// canonical byte string the signature covers.
  void write_payload(xml::Writer& w) const;
  static RoRequest from_xml(const xml::Element& e);
  static RoRequest from_node(const xml::Node& e);
};

struct RoResponse {
  Status status = Status::kSuccess;
  std::string device_id;
  std::string ri_id;
  Bytes device_nonce;  // echoed
  std::vector<ProtectedRo> ros;
  Bytes signature;

  Bytes payload() const;
  bool operator==(const RoResponse&) const = default;
  xml::Element to_xml() const;
  void write(xml::Writer& w) const;
  /// Streams the message without its <roap:signature> element — the
  /// canonical byte string the signature covers.
  void write_payload(xml::Writer& w) const;
  static RoResponse from_xml(const xml::Element& e);
  static RoResponse from_node(const xml::Node& e);
};

// ---------------------------------------------------------------------------
// Domains
// ---------------------------------------------------------------------------
struct JoinDomainRequest {
  std::string device_id;
  std::string ri_id;
  std::string domain_id;
  Bytes device_nonce;
  Bytes signature;

  Bytes payload() const;
  bool operator==(const JoinDomainRequest&) const = default;
  xml::Element to_xml() const;
  void write(xml::Writer& w) const;
  /// Streams the message without its <roap:signature> element — the
  /// canonical byte string the signature covers.
  void write_payload(xml::Writer& w) const;
  static JoinDomainRequest from_xml(const xml::Element& e);
  static JoinDomainRequest from_node(const xml::Node& e);
};

struct JoinDomainResponse {
  Status status = Status::kSuccess;
  std::string domain_id;
  std::uint32_t generation = 0;
  Bytes device_nonce;        // echoed (freshness binding for the join)
  Bytes wrapped_domain_key;  // RSA-KEM C transporting K_D to the device
  Bytes signature;

  Bytes payload() const;
  bool operator==(const JoinDomainResponse&) const = default;
  xml::Element to_xml() const;
  void write(xml::Writer& w) const;
  /// Streams the message without its <roap:signature> element — the
  /// canonical byte string the signature covers.
  void write_payload(xml::Writer& w) const;
  static JoinDomainResponse from_xml(const xml::Element& e);
  static JoinDomainResponse from_node(const xml::Node& e);
};

struct LeaveDomainRequest {
  std::string device_id;
  std::string ri_id;
  std::string domain_id;
  Bytes device_nonce;
  Bytes signature;

  Bytes payload() const;
  bool operator==(const LeaveDomainRequest&) const = default;
  xml::Element to_xml() const;
  void write(xml::Writer& w) const;
  /// Streams the message without its <roap:signature> element — the
  /// canonical byte string the signature covers.
  void write_payload(xml::Writer& w) const;
  static LeaveDomainRequest from_xml(const xml::Element& e);
  static LeaveDomainRequest from_node(const xml::Node& e);
};

struct LeaveDomainResponse {
  Status status = Status::kSuccess;
  std::string domain_id;
  Bytes device_nonce;  // echoed
  Bytes signature;

  Bytes payload() const;
  bool operator==(const LeaveDomainResponse&) const = default;
  xml::Element to_xml() const;
  void write(xml::Writer& w) const;
  /// Streams the message without its <roap:signature> element — the
  /// canonical byte string the signature covers.
  void write_payload(xml::Writer& w) const;
  static LeaveDomainResponse from_xml(const xml::Element& e);
  static LeaveDomainResponse from_node(const xml::Node& e);
};

// ---------------------------------------------------------------------------
// Triggers — lightweight unauthenticated XML documents the RI pushes (e.g.
// via WAP push) to make the DRM Agent start a ROAP exchange. The agent
// treats them as hints only; all security comes from the triggered
// protocol itself.
// ---------------------------------------------------------------------------
struct RoAcquisitionTrigger {
  std::string ri_id;
  std::string ri_url;
  std::string ro_id;
  std::string content_id;
  std::string domain_id;  // non-empty: a domain RO needing membership

  bool operator==(const RoAcquisitionTrigger&) const = default;
  xml::Element to_xml() const;
  void write(xml::Writer& w) const;
  static RoAcquisitionTrigger from_xml(const xml::Element& e);
  static RoAcquisitionTrigger from_node(const xml::Node& e);
};

}  // namespace omadrm::roap
