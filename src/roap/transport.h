// Transport seam between DRM Agents and Rights Issuers.
//
// The agent side of the stack never holds a Rights Issuer object; it holds
// a Transport, which carries one serialized request envelope to *some* RI
// and brings back its serialized response. Implementations must treat
// envelopes as opaque bytes — every trust decision (signatures, nonces,
// certificates) stays on the endpoints, which is what lets the same agent
// code run over an in-process loopback, an HTTP client, or a proxy device
// relaying for an Unconnected Device.
//
//   InProcessTransport  loopback onto a local RightsIssuer's wire
//                       dispatcher (the only component allowed to hold a
//                       RightsIssuer& on an agent's behalf).
//   FaultyTransport     decorator that drops / corrupts / delays /
//                       reorders / replays envelopes, for network
//                       simulation and robustness tests.
//
// A transport reports delivery failure by throwing
// omadrm::Error(ErrorKind::kTransport); sessions translate that into
// Result failures (StatusCode::kTransportFailure).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "roap/envelope.h"

namespace omadrm::ri {
class RightsIssuer;
}

namespace omadrm::roap {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Carries `request` to the Rights Issuer and returns its response.
  /// Throws omadrm::Error(kTransport) when the exchange is lost and
  /// omadrm::Error(kFormat) when the returned bytes do not parse.
  virtual Envelope request(const Envelope& request) = 0;

  /// Carries pre-serialized wire bytes — possibly damaged ones — to the
  /// peer. A real network delivers whatever bytes the medium produced
  /// and lets the *server* refuse them; this seam preserves that
  /// semantics for fault injectors (FaultyTransport's corrupt-request
  /// fault ships the mangled document through here, so over a
  /// SocketTransport the garbage genuinely crosses the wire and over an
  /// InProcessTransport it reaches RightsIssuer::handle_wire). The
  /// default for transports without a raw byte path parses locally and
  /// forwards, throwing omadrm::Error(kFormat) when the bytes are
  /// beyond delivery.
  virtual Envelope request_raw(std::string_view wire) {
    return request(Envelope::from_wire(wire));
  }
};

class InProcessTransport final : public Transport {
 public:
  /// `now` models the server's clock (certificate validation, OCSP
  /// production); advance it with set_now for time-travel tests.
  InProcessTransport(ri::RightsIssuer& ri, std::uint64_t now);

  void set_now(std::uint64_t now) { now_ = now; }
  std::uint64_t now() const { return now_; }

  Envelope request(const Envelope& request) override;
  /// Hands raw bytes to the RI's wire entry point — garbage reaches the
  /// server-side parser exactly as it would over a real link.
  Envelope request_raw(std::string_view wire) override;

 private:
  ri::RightsIssuer& ri_;
  std::uint64_t now_;
};

class FaultyTransport final : public Transport {
 public:
  enum class Fault : std::uint8_t {
    kNone,             // deliver honestly
    kDropRequest,      // request never reaches the RI
    kDropResponse,     // RI processes the request, response is lost
    kCorruptRequest,   // request bytes mangled in transit
    kCorruptResponse,  // response bytes mangled in transit
    kReplayResponse,   // previous exchange's response returned again
    kDelayResponse,    // response arrives one exchange late (reordering)
  };

  struct Stats {
    std::size_t requests = 0;   // exchanges attempted
    std::size_t delivered = 0;  // responses handed to the caller
    std::size_t dropped = 0;
    std::size_t corrupted = 0;
    std::size_t replayed = 0;
    std::size_t delayed = 0;
    std::size_t scheduled = 0;  // faults consumed from set_schedule()
  };

  FaultyTransport(Transport& inner, Rng& rng);

  /// Queues a one-shot fault consumed by the next request (FIFO). With an
  /// empty queue the schedule, then the probabilistic rates below, apply.
  void inject(Fault fault);
  /// Installs a scripted fault sequence, one entry per request, consumed
  /// after any inject()ed faults and before the probabilistic mode. Feed
  /// a recorded fault_log() back in to replay an observed run exactly.
  void set_schedule(std::vector<Fault> schedule);
  std::size_t schedule_remaining() const { return schedule_.size(); }
  /// Probability in [0,1] of dropping / corrupting / replaying / delaying
  /// an exchange when no injected or scheduled fault is pending. The
  /// rates are cumulative slices of one uniform draw, so their sum must
  /// stay <= 1.
  void set_drop_rate(double p) { drop_rate_ = p; }
  void set_corrupt_rate(double p) { corrupt_rate_ = p; }
  void set_replay_rate(double p) { replay_rate_ = p; }
  void set_delay_rate(double p) { delay_rate_ = p; }

  /// Discards responses still queued by kDelayResponse — the network
  /// "timing out" the stale packets so in-order delivery resumes.
  void discard_delayed() { delayed_.clear(); }

  const Stats& stats() const { return stats_; }

  /// Every fault applied so far, one entry per request() in order
  /// (kNone for honest deliveries) — the exact scenario a probabilistic
  /// run produced, replayable via set_schedule().
  const std::vector<Fault>& fault_log() const { return fault_log_; }
  void clear_fault_log() { fault_log_.clear(); }

  Envelope request(const Envelope& request) override;

 private:
  Fault next_fault();
  std::string corrupt(std::string wire);

  Transport& inner_;
  Rng& rng_;
  std::deque<Fault> injected_;
  std::deque<Fault> schedule_;
  std::deque<Envelope> delayed_;
  std::optional<Envelope> last_response_;
  double drop_rate_ = 0;
  double corrupt_rate_ = 0;
  double replay_rate_ = 0;
  double delay_rate_ = 0;
  std::vector<Fault> fault_log_;
  Stats stats_;
};

}  // namespace omadrm::roap
