// ROAP wire envelope — the unit a Transport carries.
//
// An Envelope is a type tag plus the *serialized* XML document of exactly
// one ROAP message (the parsed DOM rides along so each document is
// parsed exactly once per hop). Wrapping serializes; opening decodes the
// typed message. Because every envelope holds wire bytes (never a live
// message object), anything that crosses a Transport has by construction
// survived a full serialize→parse round trip — the seam where a real
// network, a proxy device, or a fault injector can sit.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.h"
#include "roap/messages.h"
#include "xml/xml.h"

namespace omadrm::roap {

enum class MessageType : std::uint8_t {
  kDeviceHello,
  kRiHello,
  kRegistrationRequest,
  kRegistrationResponse,
  kRoRequest,
  kRoResponse,
  kJoinDomainRequest,
  kJoinDomainResponse,
  kLeaveDomainRequest,
  kLeaveDomainResponse,
  kRoAcquisitionTrigger,
};

/// "RegistrationRequest", ... (stable, human-oriented).
const char* to_string(MessageType t);
/// The XML root element carrying this type ("roap:registrationRequest").
const char* root_element(MessageType t);
/// True for the five client→RI request documents an RI can serve.
bool is_request(MessageType t);

/// Compile-time message↔type mapping; specialized for every ROAP message.
template <typename Msg>
struct MessageTraits;

template <> struct MessageTraits<DeviceHello> {
  static constexpr MessageType kType = MessageType::kDeviceHello;
};
template <> struct MessageTraits<RiHello> {
  static constexpr MessageType kType = MessageType::kRiHello;
};
template <> struct MessageTraits<RegistrationRequest> {
  static constexpr MessageType kType = MessageType::kRegistrationRequest;
};
template <> struct MessageTraits<RegistrationResponse> {
  static constexpr MessageType kType = MessageType::kRegistrationResponse;
};
template <> struct MessageTraits<RoRequest> {
  static constexpr MessageType kType = MessageType::kRoRequest;
};
template <> struct MessageTraits<RoResponse> {
  static constexpr MessageType kType = MessageType::kRoResponse;
};
template <> struct MessageTraits<JoinDomainRequest> {
  static constexpr MessageType kType = MessageType::kJoinDomainRequest;
};
template <> struct MessageTraits<JoinDomainResponse> {
  static constexpr MessageType kType = MessageType::kJoinDomainResponse;
};
template <> struct MessageTraits<LeaveDomainRequest> {
  static constexpr MessageType kType = MessageType::kLeaveDomainRequest;
};
template <> struct MessageTraits<LeaveDomainResponse> {
  static constexpr MessageType kType = MessageType::kLeaveDomainResponse;
};
template <> struct MessageTraits<RoAcquisitionTrigger> {
  static constexpr MessageType kType = MessageType::kRoAcquisitionTrigger;
};

class Envelope {
 public:
  Envelope() = default;

  /// Serializes a message into its envelope.
  template <typename Msg>
  static Envelope wrap(const Msg& msg) {
    xml::Element doc = msg.to_xml();
    std::string wire = doc.serialize();
    return Envelope(MessageTraits<Msg>::kType, std::move(wire),
                    std::move(doc));
  }

  /// Parses raw wire bytes: must be a well-formed XML document whose root
  /// element is a known ROAP message. Throws omadrm::Error(kFormat)
  /// otherwise. The original bytes are kept verbatim.
  static Envelope from_wire(std::string wire);

  MessageType type() const { return type_; }
  /// The serialized XML document.
  const std::string& wire() const { return wire_; }
  std::size_t size() const { return wire_.size(); }

  /// Decodes the document as the given message type. Throws
  /// omadrm::Error(kProtocol) when the envelope holds a different type,
  /// omadrm::Error(kFormat) when the document's content is malformed.
  template <typename Msg>
  Msg open() const {
    if (type_ != MessageTraits<Msg>::kType) {
      throw Error(ErrorKind::kProtocol,
                  std::string("roap: envelope holds ") + to_string(type_) +
                      ", expected " +
                      to_string(MessageTraits<Msg>::kType));
    }
    return Msg::from_xml(doc_);
  }

 private:
  Envelope(MessageType type, std::string wire, xml::Element doc)
      : type_(type), wire_(std::move(wire)), doc_(std::move(doc)) {}

  MessageType type_ = MessageType::kDeviceHello;
  std::string wire_;
  xml::Element doc_;  // the parse of wire_, kept so open() never re-parses
};

}  // namespace omadrm::roap
