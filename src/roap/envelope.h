// ROAP wire envelope — the unit a Transport carries.
//
// An Envelope is a type tag plus the *serialized* XML document of exactly
// one ROAP message, with a zero-copy parse of those bytes riding along
// (so each document is parsed exactly once per hop). Wrapping streams
// the message into the retained wire buffer and immediately parses it,
// so every envelope's DOM is by construction derived from its serialized
// bytes — anything that crosses a Transport has survived a full
// serialize→parse round trip, the seam where a real network, a proxy
// device, or a fault injector can sit.
//
// Buffers recycle: an envelope draws its wire string and parse arena
// from a thread-local pool and returns them on destruction, so steady
// state traffic wraps, parses, and opens envelopes without touching the
// heap (the decoded message structs are the only remaining owners).
// Copying an envelope re-parses its bytes; moving is pointer-cheap.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.h"
#include "roap/messages.h"
#include "xml/xml.h"

namespace omadrm::roap {

enum class MessageType : std::uint8_t {
  kDeviceHello,
  kRiHello,
  kRegistrationRequest,
  kRegistrationResponse,
  kRoRequest,
  kRoResponse,
  kJoinDomainRequest,
  kJoinDomainResponse,
  kLeaveDomainRequest,
  kLeaveDomainResponse,
  kRoAcquisitionTrigger,
};

/// "RegistrationRequest", ... (stable, human-oriented).
const char* to_string(MessageType t);
/// The XML root element carrying this type ("roap:registrationRequest").
const char* root_element(MessageType t);
/// True for the five client→RI request documents an RI can serve.
bool is_request(MessageType t);

/// Compile-time message↔type mapping; specialized for every ROAP message.
template <typename Msg>
struct MessageTraits;

template <> struct MessageTraits<DeviceHello> {
  static constexpr MessageType kType = MessageType::kDeviceHello;
};
template <> struct MessageTraits<RiHello> {
  static constexpr MessageType kType = MessageType::kRiHello;
};
template <> struct MessageTraits<RegistrationRequest> {
  static constexpr MessageType kType = MessageType::kRegistrationRequest;
};
template <> struct MessageTraits<RegistrationResponse> {
  static constexpr MessageType kType = MessageType::kRegistrationResponse;
};
template <> struct MessageTraits<RoRequest> {
  static constexpr MessageType kType = MessageType::kRoRequest;
};
template <> struct MessageTraits<RoResponse> {
  static constexpr MessageType kType = MessageType::kRoResponse;
};
template <> struct MessageTraits<JoinDomainRequest> {
  static constexpr MessageType kType = MessageType::kJoinDomainRequest;
};
template <> struct MessageTraits<JoinDomainResponse> {
  static constexpr MessageType kType = MessageType::kJoinDomainResponse;
};
template <> struct MessageTraits<LeaveDomainRequest> {
  static constexpr MessageType kType = MessageType::kLeaveDomainRequest;
};
template <> struct MessageTraits<LeaveDomainResponse> {
  static constexpr MessageType kType = MessageType::kLeaveDomainResponse;
};
template <> struct MessageTraits<RoAcquisitionTrigger> {
  static constexpr MessageType kType = MessageType::kRoAcquisitionTrigger;
};

class Envelope {
 public:
  Envelope() = default;
  ~Envelope();
  Envelope(Envelope&& other) noexcept;
  Envelope& operator=(Envelope&& other) noexcept;
  /// Copying re-parses the wire bytes into the copy's own arena.
  Envelope(const Envelope& other);
  Envelope& operator=(const Envelope& other);

  /// Serializes a message into its envelope: streams the document into
  /// the pooled wire buffer and parses it back (zero-copy), so the
  /// retained DOM is exactly the parse of the retained bytes.
  template <typename Msg>
  static Envelope wrap(const Msg& msg) {
    Envelope env = acquire();
    xml::Writer w(env.wire_);
    msg.write(w);
    env.adopt(MessageTraits<Msg>::kType);
    return env;
  }

  /// Parses raw wire bytes: must be a well-formed XML document whose root
  /// element is a known ROAP message. Throws omadrm::Error(kFormat)
  /// otherwise. The bytes are kept verbatim (copied into the pooled
  /// buffer).
  static Envelope from_wire(std::string_view wire);

  MessageType type() const { return type_; }
  /// The serialized XML document.
  const std::string& wire() const { return wire_; }
  std::size_t size() const { return wire_.size(); }
  /// True for a default-constructed or moved-from envelope.
  bool empty() const { return doc_ == nullptr; }

  /// The zero-copy parse of wire(). Throws omadrm::Error(kState) on an
  /// empty envelope.
  const xml::Node& doc() const;

  /// Decodes the document as the given message type. Throws
  /// omadrm::Error(kProtocol) when the envelope holds a different type,
  /// omadrm::Error(kFormat) when the document's content is malformed.
  template <typename Msg>
  Msg open() const {
    if (type_ != MessageTraits<Msg>::kType) {
      throw Error(ErrorKind::kProtocol,
                  std::string("roap: envelope holds ") + to_string(type_) +
                      ", expected " +
                      to_string(MessageTraits<Msg>::kType));
    }
    return Msg::from_node(doc());
  }

 private:
  /// An envelope whose wire buffer / arena come from the thread pool.
  static Envelope acquire();
  /// Parses wire_ into arena_ and records the type (wrap side: the root
  /// element is trusted to match `t`, which wrap() just serialized).
  void adopt(MessageType t);
  void release() noexcept;

  MessageType type_ = MessageType::kDeviceHello;
  std::string wire_;
  xml::Arena arena_;
  const xml::Node* doc_ = nullptr;  // parse of wire_, inside arena_
};

}  // namespace omadrm::roap
