// Fault-tolerant ROAP: retry policy, virtual clock, and the reliable
// transport decorator.
//
// The paper's terminal (§2.3) reaches its Rights Issuer over a mobile
// network, where a lost envelope is weather, not failure. This module
// gives every layer of the agent stack one shared answer to "is this
// outcome worth retrying?":
//
//   RetryPolicy        deadline + bounded attempts + exponential backoff
//                      with jitter, and the per-fault classification that
//                      separates retriable transport loss from terminal
//                      verification/refusal outcomes.
//   RetryClock         the time + sleep seam. VirtualRetryClock (the
//                      default) advances a counter instead of sleeping,
//                      keeping every retrying test and soak seeded and
//                      instantaneous; SystemRetryClock is the production
//                      binding.
//   ReliableTransport  a Transport decorator that absorbs *thrown*
//                      transport losses (drops, timeouts) by resending
//                      the same envelope with backoff. Anything that came
//                      back as bytes — even garbage — is handed upward:
//                      judging content is the session layer's job.
//
// The session layer (agent/sessions.h run(transport, policy) overloads)
// uses the same policy to re-drive a *pass* whose response failed
// verification retriably, which is strictly stronger than resending at
// the transport level: a replayed or corrupted response is delivered
// fine by the wire but still needs the request sent again.
//
// Why retrying on verification failure is safe: every resend goes
// through the full verification pipeline again, so a retry can never
// accept what verification rejects — it only buys more chances to see
// an honest delivery. Server-side, the RI's idempotent replay cache
// (ri/rights_issuer.h) makes the resends free and double-issue
// impossible.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/random.h"
#include "common/status.h"
#include "roap/envelope.h"
#include "roap/transport.h"

namespace omadrm::roap {

/// The two ways a failed exchange can be classified.
enum class FaultClass : std::uint8_t {
  kRetriable,  // transient: resend the same pass
  kTerminal,   // final for this session: retrying cannot change the answer
};

/// Bounds and pacing for one protocol exchange (a session applies it per
/// pass; ReliableTransport applies it per envelope). All times are in
/// milliseconds on the driving RetryClock.
struct RetryPolicy {
  std::size_t max_attempts = 5;     // total tries per pass, including the 1st
  std::uint64_t deadline_ms = 30000;  // whole-session budget; 0 = unlimited
  std::uint64_t base_backoff_ms = 20;
  std::uint64_t max_backoff_ms = 2000;
  double jitter = 0.5;              // backoff spread: [b*(1-j), b*(1+j))
  /// Registration only: how many times run(policy) may restart the whole
  /// handshake from DeviceHello when the RI reports kSessionExpired.
  std::size_t max_restarts = 1;

  /// Backoff before attempt `attempt`+1 (1-based: attempt 1 just failed).
  /// Exponential in the attempt number, capped, spread by `jitter` via
  /// one draw from `rng` — seeded callers get reproducible pacing.
  std::uint64_t backoff_ms(std::size_t attempt, Rng& rng) const;

  /// The shared fault table. Retriable codes are exactly those a lost,
  /// stale, or damaged delivery can produce: the transport boundary codes
  /// (kTransportFailure, kTimeout), parse/shape damage (kMalformedMessage,
  /// kUnexpectedMessage), verification failures a corrupted or replayed
  /// response triggers (kNonceMismatch, kSignatureInvalid), the peer's
  /// transient kStoreFailure refusal, and the peer's kServerBusy load-shed
  /// (admission control refused before processing — a resend with backoff
  /// is always safe). Everything else — authoritative RI
  /// refusals, local preconditions, certificate verdicts, RO integrity —
  /// is terminal: a resend re-verifies and gets the same answer.
  /// kSessionExpired is terminal *for the pass*; the registration driver
  /// treats it as the restart-from-DeviceHello signal instead.
  static FaultClass classify(StatusCode code);
  static bool retriable(StatusCode code) {
    return classify(code) == FaultClass::kRetriable;
  }
};

/// Time + sleep seam for retry pacing.
class RetryClock {
 public:
  virtual ~RetryClock() = default;
  virtual std::uint64_t now_ms() = 0;
  virtual void sleep_ms(std::uint64_t ms) = 0;
};

/// Deterministic clock: sleeping advances the reading. The default for
/// every driver in this repo — retries are instantaneous and the elapsed
/// "time" is a pure function of the retry schedule, so deadline behaviour
/// is testable without wall-clock flakiness.
class VirtualRetryClock final : public RetryClock {
 public:
  explicit VirtualRetryClock(std::uint64_t start_ms = 0) : now_(start_ms) {}
  std::uint64_t now_ms() override { return now_; }
  void sleep_ms(std::uint64_t ms) override { now_ += ms; }

 private:
  std::uint64_t now_;
};

/// Wall-clock binding for deployments (std::chrono steady clock +
/// std::this_thread::sleep_for).
class SystemRetryClock final : public RetryClock {
 public:
  std::uint64_t now_ms() override;
  void sleep_ms(std::uint64_t ms) override;
};

/// Transport decorator that retries thrown deliveries. This is the seam a
/// future SocketTransport sits under: the socket reports loss by
/// throwing Error(kTransport), and this layer turns "lost" into "late".
///
/// Only *thrown* kTransport and kBusy failures are retried here (kBusy is
/// a server's admission-control shed: answered before processing, so the
/// resend races nothing). A response that arrived but fails to parse or
/// verify is the session layer's business — retrying it requires
/// re-driving the pass, which a transport cannot do.
///
/// Throws Error(kExhausted) when the attempt budget is spent and
/// Error(kTimeout) when the policy deadline passes, both carrying the
/// attempt count; sessions map these to kRetriesExhausted / kTimeout.
class ReliableTransport final : public Transport {
 public:
  struct Stats {
    std::size_t requests = 0;   // calls into this decorator
    std::size_t attempts = 0;   // sends to the inner transport
    std::size_t retries = 0;    // attempts beyond each request's first
    std::size_t busy = 0;       // attempts shed by the peer (kBusy refusals)
    std::size_t exhausted = 0;  // requests that spent the attempt budget
    std::size_t timeouts = 0;   // requests that hit the deadline
  };

  /// `clock` may be null: the decorator then owns a VirtualRetryClock
  /// (deterministic pacing, no real sleeping).
  ReliableTransport(Transport& inner, RetryPolicy policy, Rng& rng,
                    RetryClock* clock = nullptr);

  Envelope request(const Envelope& request) override;

  const Stats& stats() const { return stats_; }
  const RetryPolicy& policy() const { return policy_; }

 private:
  Transport& inner_;
  RetryPolicy policy_;
  Rng& rng_;
  RetryClock* clock_;
  VirtualRetryClock owned_clock_;
  Stats stats_;
};

}  // namespace omadrm::roap
