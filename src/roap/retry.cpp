#include "roap/retry.h"

#include <chrono>
#include <string>
#include <thread>

#include "common/error.h"

namespace omadrm::roap {

using omadrm::Error;
using omadrm::ErrorKind;

std::uint64_t RetryPolicy::backoff_ms(std::size_t attempt, Rng& rng) const {
  if (base_backoff_ms == 0) return 0;
  // base << (attempt-1), saturating, then capped.
  std::uint64_t backoff = base_backoff_ms;
  for (std::size_t i = 1; i < attempt && backoff < max_backoff_ms; ++i) {
    backoff *= 2;
  }
  if (backoff > max_backoff_ms) backoff = max_backoff_ms;
  if (jitter <= 0) return backoff;
  // One draw with 2^20 resolution spreads the wait over
  // [backoff*(1-j), backoff*(1+j)) — decorrelates a fleet retrying the
  // same outage without losing per-seed determinism.
  const double j = jitter > 1.0 ? 1.0 : jitter;
  const double u = static_cast<double>(rng.uniform(std::uint64_t{1} << 20)) /
                   static_cast<double>(std::uint64_t{1} << 20);
  const double scaled = static_cast<double>(backoff) * (1.0 - j + 2.0 * j * u);
  return scaled < 1.0 ? 1 : static_cast<std::uint64_t>(scaled);
}

FaultClass RetryPolicy::classify(StatusCode code) {
  // Deliberately NO default: every StatusCode enumerator must be
  // classified here by hand. A new code added to status.h without a row
  // in this table is a -Wswitch warning at compile time AND a
  // lint_invariants.py failure (rule `classify-coverage`) in CI — the
  // fault table can no longer drift silently.
  switch (code) {
    case StatusCode::kTransportFailure:  // envelope lost in transit
    case StatusCode::kTimeout:           // transport-level deadline
    case StatusCode::kMalformedMessage:  // bytes damaged in transit
    case StatusCode::kUnexpectedMessage: // stale / reordered delivery
    case StatusCode::kNonceMismatch:     // replayed response, not bound to us
    case StatusCode::kSignatureInvalid:  // parseable but damaged response
    case StatusCode::kStoreFailure:      // peer store degraded; may recover
    case StatusCode::kServerBusy:        // peer shed under overload; backoff
      return FaultClass::kRetriable;

    // Terminal: success, authoritative RI refusals, local preconditions,
    // certificate/RO verdicts, retry-budget outcomes, and store states a
    // resend cannot heal. kSessionExpired is terminal for the PASS; the
    // registration driver treats it as restart-from-DeviceHello instead.
    case StatusCode::kOk:
    case StatusCode::kNotProvisioned:
    case StatusCode::kNoRiContext:
    case StatusCode::kRiContextExpired:
    case StatusCode::kRiAborted:
    case StatusCode::kNotRegistered:
    case StatusCode::kUnknownRoId:
    case StatusCode::kAccessDenied:
    case StatusCode::kCertificateInvalid:
    case StatusCode::kOcspInvalid:
    case StatusCode::kCertificateRevoked:
    case StatusCode::kUnwrapFailed:
    case StatusCode::kMacMismatch:
    case StatusCode::kRoSignatureInvalid:
    case StatusCode::kNoDomainKey:
    case StatusCode::kNotInstalled:
    case StatusCode::kDcfHashMismatch:
    case StatusCode::kPermissionDenied:
    case StatusCode::kRetriesExhausted:
    case StatusCode::kSessionExpired:
    case StatusCode::kStoreCorrupt:
    case StatusCode::kStoreSealBroken:
    case StatusCode::kStoreRollback:
      return FaultClass::kTerminal;
  }
  return FaultClass::kTerminal;  // unreachable; keeps -Wreturn-type quiet
}

std::uint64_t SystemRetryClock::now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SystemRetryClock::sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

ReliableTransport::ReliableTransport(Transport& inner, RetryPolicy policy,
                                     Rng& rng, RetryClock* clock)
    : inner_(inner),
      policy_(policy),
      rng_(rng),
      clock_(clock != nullptr ? clock : &owned_clock_) {}

Envelope ReliableTransport::request(const Envelope& request) {
  ++stats_.requests;
  const std::uint64_t start = clock_->now_ms();
  std::string last;
  for (std::size_t attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    if (policy_.deadline_ms != 0 &&
        clock_->now_ms() - start >= policy_.deadline_ms) {
      ++stats_.timeouts;
      throw Error(ErrorKind::kTimeout,
                  "transport: deadline exceeded after " +
                      std::to_string(attempt - 1) + " attempts: last: " +
                      (last.empty() ? "none sent" : last));
    }
    ++stats_.attempts;
    if (attempt > 1) ++stats_.retries;
    try {
      return inner_.request(request);
    } catch (const Error& e) {
      // Ours to absorb: a lost exchange (kTransport) or a load-shed
      // refusal (kBusy — the server answered "not now", which is a
      // promise the request was never processed, so resending with
      // backoff is always safe). Delivered-but-damaged bytes (kFormat)
      // and everything else belong to the caller.
      if (e.kind() == ErrorKind::kBusy) {
        ++stats_.busy;
      } else if (e.kind() != ErrorKind::kTransport) {
        throw;
      }
      last = e.what();
    }
    if (attempt < policy_.max_attempts) {
      clock_->sleep_ms(policy_.backoff_ms(attempt, rng_));
    }
  }
  ++stats_.exhausted;
  throw Error(ErrorKind::kExhausted,
              "transport: gave up after " +
                  std::to_string(policy_.max_attempts) +
                  " attempts: last: " + last);
}

}  // namespace omadrm::roap
