#include "roap/envelope.h"

#include <utility>
#include <vector>

namespace omadrm::roap {

using omadrm::Error;
using omadrm::ErrorKind;

const char* to_string(MessageType t) {
  switch (t) {
    case MessageType::kDeviceHello: return "DeviceHello";
    case MessageType::kRiHello: return "RIHello";
    case MessageType::kRegistrationRequest: return "RegistrationRequest";
    case MessageType::kRegistrationResponse: return "RegistrationResponse";
    case MessageType::kRoRequest: return "RORequest";
    case MessageType::kRoResponse: return "ROResponse";
    case MessageType::kJoinDomainRequest: return "JoinDomainRequest";
    case MessageType::kJoinDomainResponse: return "JoinDomainResponse";
    case MessageType::kLeaveDomainRequest: return "LeaveDomainRequest";
    case MessageType::kLeaveDomainResponse: return "LeaveDomainResponse";
    case MessageType::kRoAcquisitionTrigger: return "ROAcquisitionTrigger";
  }
  return "?";
}

const char* root_element(MessageType t) {
  switch (t) {
    case MessageType::kDeviceHello: return "roap:deviceHello";
    case MessageType::kRiHello: return "roap:riHello";
    case MessageType::kRegistrationRequest: return "roap:registrationRequest";
    case MessageType::kRegistrationResponse:
      return "roap:registrationResponse";
    case MessageType::kRoRequest: return "roap:roRequest";
    case MessageType::kRoResponse: return "roap:roResponse";
    case MessageType::kJoinDomainRequest: return "roap:joinDomainRequest";
    case MessageType::kJoinDomainResponse: return "roap:joinDomainResponse";
    case MessageType::kLeaveDomainRequest: return "roap:leaveDomainRequest";
    case MessageType::kLeaveDomainResponse:
      return "roap:leaveDomainResponse";
    case MessageType::kRoAcquisitionTrigger:
      return "roap:roAcquisitionTrigger";
  }
  return "?";
}

bool is_request(MessageType t) {
  switch (t) {
    case MessageType::kDeviceHello:
    case MessageType::kRegistrationRequest:
    case MessageType::kRoRequest:
    case MessageType::kJoinDomainRequest:
    case MessageType::kLeaveDomainRequest:
      return true;
    default:
      return false;
  }
}

namespace {

constexpr MessageType kAllTypes[] = {
    MessageType::kDeviceHello,         MessageType::kRiHello,
    MessageType::kRegistrationRequest, MessageType::kRegistrationResponse,
    MessageType::kRoRequest,           MessageType::kRoResponse,
    MessageType::kJoinDomainRequest,   MessageType::kJoinDomainResponse,
    MessageType::kLeaveDomainRequest,  MessageType::kLeaveDomainResponse,
    MessageType::kRoAcquisitionTrigger,
};

// ---------------------------------------------------------------------------
// Buffer pool. Destroyed envelopes donate their wire string and parse
// arena back to the thread; the next wrap()/from_wire() picks them up
// with warm capacity, making steady-state envelope traffic allocation-
// free. Keeping the wire buffer's capacity off the small-string
// optimization is load-bearing: the retained Node tree aliases the wire
// bytes, and only a heap-backed string keeps those views valid across
// envelope moves.
// ---------------------------------------------------------------------------

constexpr std::size_t kWireReserve = 256;
constexpr std::size_t kPoolMax = 32;

struct Recycled {
  std::string wire;
  xml::Arena arena;
};

struct Pool {
  std::vector<Recycled> items;
  bool alive = true;
  ~Pool() { alive = false; }
};

Pool& pool() {
  thread_local Pool p;
  return p;
}

}  // namespace

Envelope Envelope::acquire() {
  Envelope env;
  Pool& p = pool();
  if (p.alive && !p.items.empty()) {
    env.wire_ = std::move(p.items.back().wire);
    env.arena_ = std::move(p.items.back().arena);
    p.items.pop_back();
    env.wire_.clear();
    env.arena_.reset();
  }
  env.wire_.reserve(kWireReserve);
  return env;
}

void Envelope::release() noexcept {
  doc_ = nullptr;
  if (wire_.capacity() < kWireReserve) return;  // nothing worth keeping
  Pool& p = pool();
  if (!p.alive || p.items.size() >= kPoolMax) return;
  try {
    p.items.push_back(Recycled{std::move(wire_), std::move(arena_)});
  } catch (...) {
    // Pool growth failed; the buffers just die with the envelope.
  }
  wire_.clear();
}

Envelope::~Envelope() { release(); }

Envelope::Envelope(Envelope&& other) noexcept
    : type_(other.type_),
      wire_(std::move(other.wire_)),
      arena_(std::move(other.arena_)),
      doc_(other.doc_) {
  other.doc_ = nullptr;
}

Envelope& Envelope::operator=(Envelope&& other) noexcept {
  if (this != &other) {
    release();
    type_ = other.type_;
    wire_ = std::move(other.wire_);
    arena_ = std::move(other.arena_);
    doc_ = other.doc_;
    other.doc_ = nullptr;
  }
  return *this;
}

Envelope::Envelope(const Envelope& other) {
  if (!other.empty()) {
    *this = acquire();
    wire_.assign(other.wire_);
    doc_ = &xml::parse_in(arena_, wire_);
    type_ = other.type_;
  }
}

Envelope& Envelope::operator=(const Envelope& other) {
  if (this != &other) {
    *this = Envelope(other);
  }
  return *this;
}

const xml::Node& Envelope::doc() const {
  if (!doc_) {
    throw Error(ErrorKind::kState, "roap: empty envelope");
  }
  return *doc_;
}

void Envelope::adopt(MessageType t) {
  doc_ = &xml::parse_in(arena_, wire_);
  type_ = t;
}

Envelope Envelope::from_wire(std::string_view wire) {
  Envelope env = acquire();
  env.wire_.assign(wire);
  const xml::Node& doc =
      xml::parse_in(env.arena_, env.wire_);  // throws kFormat when mangled
  for (MessageType t : kAllTypes) {
    if (doc.name() == root_element(t)) {
      env.doc_ = &doc;
      env.type_ = t;
      return env;
    }
  }
  throw Error(ErrorKind::kFormat,
              "roap: unknown message <" + std::string(doc.name()) + ">");
}

}  // namespace omadrm::roap
