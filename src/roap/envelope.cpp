#include "roap/envelope.h"

namespace omadrm::roap {

using omadrm::Error;
using omadrm::ErrorKind;

const char* to_string(MessageType t) {
  switch (t) {
    case MessageType::kDeviceHello: return "DeviceHello";
    case MessageType::kRiHello: return "RIHello";
    case MessageType::kRegistrationRequest: return "RegistrationRequest";
    case MessageType::kRegistrationResponse: return "RegistrationResponse";
    case MessageType::kRoRequest: return "RORequest";
    case MessageType::kRoResponse: return "ROResponse";
    case MessageType::kJoinDomainRequest: return "JoinDomainRequest";
    case MessageType::kJoinDomainResponse: return "JoinDomainResponse";
    case MessageType::kLeaveDomainRequest: return "LeaveDomainRequest";
    case MessageType::kLeaveDomainResponse: return "LeaveDomainResponse";
    case MessageType::kRoAcquisitionTrigger: return "ROAcquisitionTrigger";
  }
  return "?";
}

const char* root_element(MessageType t) {
  switch (t) {
    case MessageType::kDeviceHello: return "roap:deviceHello";
    case MessageType::kRiHello: return "roap:riHello";
    case MessageType::kRegistrationRequest: return "roap:registrationRequest";
    case MessageType::kRegistrationResponse:
      return "roap:registrationResponse";
    case MessageType::kRoRequest: return "roap:roRequest";
    case MessageType::kRoResponse: return "roap:roResponse";
    case MessageType::kJoinDomainRequest: return "roap:joinDomainRequest";
    case MessageType::kJoinDomainResponse: return "roap:joinDomainResponse";
    case MessageType::kLeaveDomainRequest: return "roap:leaveDomainRequest";
    case MessageType::kLeaveDomainResponse:
      return "roap:leaveDomainResponse";
    case MessageType::kRoAcquisitionTrigger:
      return "roap:roAcquisitionTrigger";
  }
  return "?";
}

bool is_request(MessageType t) {
  switch (t) {
    case MessageType::kDeviceHello:
    case MessageType::kRegistrationRequest:
    case MessageType::kRoRequest:
    case MessageType::kJoinDomainRequest:
    case MessageType::kLeaveDomainRequest:
      return true;
    default:
      return false;
  }
}

namespace {

constexpr MessageType kAllTypes[] = {
    MessageType::kDeviceHello,         MessageType::kRiHello,
    MessageType::kRegistrationRequest, MessageType::kRegistrationResponse,
    MessageType::kRoRequest,           MessageType::kRoResponse,
    MessageType::kJoinDomainRequest,   MessageType::kJoinDomainResponse,
    MessageType::kLeaveDomainRequest,  MessageType::kLeaveDomainResponse,
    MessageType::kRoAcquisitionTrigger,
};

}  // namespace

Envelope Envelope::from_wire(std::string wire) {
  xml::Element doc = xml::parse(wire);  // throws kFormat when mangled
  for (MessageType t : kAllTypes) {
    if (doc.name() == root_element(t)) {
      return Envelope(t, std::move(wire), std::move(doc));
    }
  }
  throw Error(ErrorKind::kFormat,
              "roap: unknown message <" + doc.name() + ">");
}

}  // namespace omadrm::roap
