#include "roap/messages.h"

#include "common/base64.h"
#include "common/error.h"

namespace omadrm::roap {

using omadrm::Error;
using omadrm::ErrorKind;
using omadrm::StatusCode;
using xml::Element;

const char* to_string(Status s) {
  switch (s) {
    case Status::kSuccess: return "Success";
    case Status::kAbort: return "Abort";
    case Status::kNotRegistered: return "NotRegistered";
    case Status::kSignatureInvalid: return "SignatureInvalid";
    case Status::kUnknownRoId: return "UnknownRoId";
    case Status::kAccessDenied: return "AccessDenied";
  }
  return "Abort";
}

omadrm::StatusCode status_code(Status s) {
  switch (s) {
    case Status::kSuccess: return StatusCode::kOk;
    case Status::kAbort: return StatusCode::kRiAborted;
    case Status::kNotRegistered: return StatusCode::kNotRegistered;
    case Status::kSignatureInvalid: return StatusCode::kSignatureInvalid;
    case Status::kUnknownRoId: return StatusCode::kUnknownRoId;
    case Status::kAccessDenied: return StatusCode::kAccessDenied;
  }
  return StatusCode::kRiAborted;
}

Status status_from_string(const std::string& s) {
  if (s == "Success") return Status::kSuccess;
  if (s == "Abort") return Status::kAbort;
  if (s == "NotRegistered") return Status::kNotRegistered;
  if (s == "SignatureInvalid") return Status::kSignatureInvalid;
  if (s == "UnknownRoId") return Status::kUnknownRoId;
  if (s == "AccessDenied") return Status::kAccessDenied;
  throw Error(ErrorKind::kFormat, "roap: unknown status '" + s + "'");
}

namespace {

void add_b64(Element& parent, const std::string& name, ByteView data) {
  parent.add_text_child(name, base64_encode(data));
}

Bytes get_b64(const Element& e, const std::string& name) {
  return base64_decode(e.child_text(name));
}

Bytes get_b64_optional(const Element& e, const std::string& name) {
  const Element* c = e.child(name);
  return c ? base64_decode(c->text()) : Bytes{};
}

void add_algorithms(Element& parent, const std::vector<std::string>& algs) {
  Element& list = parent.add_child(Element("roap:supportedAlgorithms"));
  for (const auto& a : algs) list.add_text_child("roap:algorithm", a);
}

std::vector<std::string> get_algorithms(const Element& e) {
  std::vector<std::string> out;
  if (const Element* list = e.child("roap:supportedAlgorithms")) {
    for (const Element* a : list->children_named("roap:algorithm")) {
      out.push_back(a->text());
    }
  }
  return out;
}

std::uint32_t parse_u32(const std::string& s) {
  std::uint64_t v = 0;
  if (s.empty()) throw Error(ErrorKind::kFormat, "roap: empty number");
  for (char c : s) {
    if (c < '0' || c > '9') {
      throw Error(ErrorKind::kFormat, "roap: bad number '" + s + "'");
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (v > 0xffffffffull) {
      throw Error(ErrorKind::kFormat, "roap: number overflow");
    }
  }
  return static_cast<std::uint32_t>(v);
}

/// Serializes a message element minus any <roap:signature> child — the
/// canonical byte string that gets signed / verified.
Bytes unsigned_payload(Element e) {
  auto& kids = e.children();
  std::erase_if(kids, [](const Element& c) {
    return c.name() == "roap:signature";
  });
  return to_bytes(e.serialize());
}

}  // namespace

// ---------------------------------------------------------------------------
// ProtectedRo
// ---------------------------------------------------------------------------

Bytes ProtectedRo::mac_payload() const {
  Bytes rights_bytes = to_bytes(rights.serialize());
  Bytes id_bytes = to_bytes(
      ri_id + "|" +
      (is_domain_ro ? domain_id + "#" + std::to_string(domain_generation)
                    : ""));
  return concat({rights_bytes, wrapped_keys, enc_kcek, id_bytes});
}

Bytes ProtectedRo::signed_payload() const {
  return concat({mac_payload(), mac});
}

Element ProtectedRo::to_xml() const {
  Element e("roap:protectedRO");
  e.add_child(rights.to_xml());
  add_b64(e, "roap:encKey", wrapped_keys);
  add_b64(e, "roap:encCEK", enc_kcek);
  add_b64(e, "roap:mac", mac);
  e.add_text_child("roap:riID", ri_id);
  if (is_domain_ro) {
    e.add_text_child("roap:domainID", domain_id);
    e.add_text_child("roap:domainGeneration",
                     std::to_string(domain_generation));
  }
  if (!signature.empty()) {
    add_b64(e, "roap:signature", signature);
  }
  return e;
}

ProtectedRo ProtectedRo::from_xml(const Element& e) {
  if (e.name() != "roap:protectedRO") {
    throw Error(ErrorKind::kFormat, "roap: expected <roap:protectedRO>");
  }
  ProtectedRo out;
  out.rights = rel::Rights::from_xml(e.require_child("o-ex:rights"));
  out.wrapped_keys = get_b64(e, "roap:encKey");
  out.enc_kcek = get_b64(e, "roap:encCEK");
  out.mac = get_b64(e, "roap:mac");
  out.ri_id = e.child_text("roap:riID");
  if (const Element* d = e.child("roap:domainID")) {
    out.is_domain_ro = true;
    out.domain_id = d->text();
    if (const Element* g = e.child("roap:domainGeneration")) {
      out.domain_generation = parse_u32(g->text());
    }
  }
  out.signature = get_b64_optional(e, "roap:signature");
  return out;
}

// ---------------------------------------------------------------------------
// DeviceHello / RiHello
// ---------------------------------------------------------------------------

Element DeviceHello::to_xml() const {
  Element e("roap:deviceHello");
  e.add_text_child("roap:deviceID", device_id);
  add_algorithms(e, algorithms);
  add_b64(e, "roap:nonce", device_nonce);
  return e;
}

DeviceHello DeviceHello::from_xml(const Element& e) {
  if (e.name() != "roap:deviceHello") {
    throw Error(ErrorKind::kFormat, "roap: expected <roap:deviceHello>");
  }
  DeviceHello out;
  out.device_id = e.child_text("roap:deviceID");
  out.algorithms = get_algorithms(e);
  out.device_nonce = get_b64(e, "roap:nonce");
  return out;
}

Element RiHello::to_xml() const {
  Element e("roap:riHello");
  e.set_attr("status", to_string(status));
  e.add_text_child("roap:riID", ri_id);
  e.add_text_child("roap:sessionID", session_id);
  add_algorithms(e, algorithms);
  add_b64(e, "roap:nonce", ri_nonce);
  return e;
}

RiHello RiHello::from_xml(const Element& e) {
  if (e.name() != "roap:riHello") {
    throw Error(ErrorKind::kFormat, "roap: expected <roap:riHello>");
  }
  RiHello out;
  out.status = status_from_string(e.require_attr("status"));
  out.ri_id = e.child_text("roap:riID");
  out.session_id = e.child_text("roap:sessionID");
  out.algorithms = get_algorithms(e);
  out.ri_nonce = get_b64(e, "roap:nonce");
  return out;
}

// ---------------------------------------------------------------------------
// RegistrationRequest / RegistrationResponse
// ---------------------------------------------------------------------------

Element RegistrationRequest::to_xml() const {
  Element e("roap:registrationRequest");
  e.add_text_child("roap:sessionID", session_id);
  e.add_text_child("roap:deviceID", device_id);
  add_b64(e, "roap:deviceNonce", device_nonce);
  add_b64(e, "roap:riNonce", ri_nonce);
  add_b64(e, "roap:certificate", certificate_der);
  add_b64(e, "roap:ocspNonce", ocsp_nonce);
  if (!signature.empty()) add_b64(e, "roap:signature", signature);
  return e;
}

Bytes RegistrationRequest::payload() const { return unsigned_payload(to_xml()); }

RegistrationRequest RegistrationRequest::from_xml(const Element& e) {
  if (e.name() != "roap:registrationRequest") {
    throw Error(ErrorKind::kFormat,
                "roap: expected <roap:registrationRequest>");
  }
  RegistrationRequest out;
  out.session_id = e.child_text("roap:sessionID");
  out.device_id = e.child_text("roap:deviceID");
  out.device_nonce = get_b64(e, "roap:deviceNonce");
  out.ri_nonce = get_b64(e, "roap:riNonce");
  out.certificate_der = get_b64(e, "roap:certificate");
  out.ocsp_nonce = get_b64(e, "roap:ocspNonce");
  out.signature = get_b64_optional(e, "roap:signature");
  return out;
}

Element RegistrationResponse::to_xml() const {
  Element e("roap:registrationResponse");
  e.set_attr("status", to_string(status));
  e.add_text_child("roap:sessionID", session_id);
  e.add_text_child("roap:riID", ri_id);
  e.add_text_child("roap:riURL", ri_url);
  add_b64(e, "roap:certificate", ri_certificate_der);
  for (const Bytes& der : ri_certificate_chain_der) {
    add_b64(e, "roap:chainCertificate", der);
  }
  add_b64(e, "roap:ocspResponse", ocsp_response_der);
  if (!signature.empty()) add_b64(e, "roap:signature", signature);
  return e;
}

Bytes RegistrationResponse::payload() const {
  return unsigned_payload(to_xml());
}

RegistrationResponse RegistrationResponse::from_xml(const Element& e) {
  if (e.name() != "roap:registrationResponse") {
    throw Error(ErrorKind::kFormat,
                "roap: expected <roap:registrationResponse>");
  }
  RegistrationResponse out;
  out.status = status_from_string(e.require_attr("status"));
  out.session_id = e.child_text("roap:sessionID");
  out.ri_id = e.child_text("roap:riID");
  out.ri_url = e.child_text("roap:riURL");
  out.ri_certificate_der = get_b64(e, "roap:certificate");
  for (const Element* c : e.children_named("roap:chainCertificate")) {
    out.ri_certificate_chain_der.push_back(base64_decode(c->text()));
  }
  out.ocsp_response_der = get_b64(e, "roap:ocspResponse");
  out.signature = get_b64_optional(e, "roap:signature");
  return out;
}

// ---------------------------------------------------------------------------
// RoRequest / RoResponse
// ---------------------------------------------------------------------------

Element RoRequest::to_xml() const {
  Element e("roap:roRequest");
  e.add_text_child("roap:deviceID", device_id);
  e.add_text_child("roap:riID", ri_id);
  e.add_text_child("roap:roID", ro_id);
  if (!domain_id.empty()) e.add_text_child("roap:domainID", domain_id);
  add_b64(e, "roap:deviceNonce", device_nonce);
  if (!signature.empty()) add_b64(e, "roap:signature", signature);
  return e;
}

Bytes RoRequest::payload() const { return unsigned_payload(to_xml()); }

RoRequest RoRequest::from_xml(const Element& e) {
  if (e.name() != "roap:roRequest") {
    throw Error(ErrorKind::kFormat, "roap: expected <roap:roRequest>");
  }
  RoRequest out;
  out.device_id = e.child_text("roap:deviceID");
  out.ri_id = e.child_text("roap:riID");
  out.ro_id = e.child_text("roap:roID");
  if (const Element* d = e.child("roap:domainID")) out.domain_id = d->text();
  out.device_nonce = get_b64(e, "roap:deviceNonce");
  out.signature = get_b64_optional(e, "roap:signature");
  return out;
}

Element RoResponse::to_xml() const {
  Element e("roap:roResponse");
  e.set_attr("status", to_string(status));
  e.add_text_child("roap:deviceID", device_id);
  e.add_text_child("roap:riID", ri_id);
  add_b64(e, "roap:deviceNonce", device_nonce);
  for (const auto& ro : ros) {
    e.add_child(ro.to_xml());
  }
  if (!signature.empty()) add_b64(e, "roap:signature", signature);
  return e;
}

Bytes RoResponse::payload() const { return unsigned_payload(to_xml()); }

RoResponse RoResponse::from_xml(const Element& e) {
  if (e.name() != "roap:roResponse") {
    throw Error(ErrorKind::kFormat, "roap: expected <roap:roResponse>");
  }
  RoResponse out;
  out.status = status_from_string(e.require_attr("status"));
  out.device_id = e.child_text("roap:deviceID");
  out.ri_id = e.child_text("roap:riID");
  out.device_nonce = get_b64(e, "roap:deviceNonce");
  for (const Element* ro : e.children_named("roap:protectedRO")) {
    out.ros.push_back(ProtectedRo::from_xml(*ro));
  }
  out.signature = get_b64_optional(e, "roap:signature");
  return out;
}

// ---------------------------------------------------------------------------
// JoinDomainRequest / JoinDomainResponse
// ---------------------------------------------------------------------------

Element JoinDomainRequest::to_xml() const {
  Element e("roap:joinDomainRequest");
  e.add_text_child("roap:deviceID", device_id);
  e.add_text_child("roap:riID", ri_id);
  e.add_text_child("roap:domainID", domain_id);
  add_b64(e, "roap:deviceNonce", device_nonce);
  if (!signature.empty()) add_b64(e, "roap:signature", signature);
  return e;
}

Bytes JoinDomainRequest::payload() const { return unsigned_payload(to_xml()); }

JoinDomainRequest JoinDomainRequest::from_xml(const Element& e) {
  if (e.name() != "roap:joinDomainRequest") {
    throw Error(ErrorKind::kFormat,
                "roap: expected <roap:joinDomainRequest>");
  }
  JoinDomainRequest out;
  out.device_id = e.child_text("roap:deviceID");
  out.ri_id = e.child_text("roap:riID");
  out.domain_id = e.child_text("roap:domainID");
  out.device_nonce = get_b64(e, "roap:deviceNonce");
  out.signature = get_b64_optional(e, "roap:signature");
  return out;
}

Element JoinDomainResponse::to_xml() const {
  Element e("roap:joinDomainResponse");
  e.set_attr("status", to_string(status));
  e.add_text_child("roap:domainID", domain_id);
  e.add_text_child("roap:generation", std::to_string(generation));
  add_b64(e, "roap:deviceNonce", device_nonce);
  add_b64(e, "roap:domainKey", wrapped_domain_key);
  if (!signature.empty()) add_b64(e, "roap:signature", signature);
  return e;
}

Bytes JoinDomainResponse::payload() const {
  return unsigned_payload(to_xml());
}

JoinDomainResponse JoinDomainResponse::from_xml(const Element& e) {
  if (e.name() != "roap:joinDomainResponse") {
    throw Error(ErrorKind::kFormat,
                "roap: expected <roap:joinDomainResponse>");
  }
  JoinDomainResponse out;
  out.status = status_from_string(e.require_attr("status"));
  out.domain_id = e.child_text("roap:domainID");
  out.generation = parse_u32(e.child_text("roap:generation"));
  out.device_nonce = get_b64_optional(e, "roap:deviceNonce");
  out.wrapped_domain_key = get_b64(e, "roap:domainKey");
  out.signature = get_b64_optional(e, "roap:signature");
  return out;
}

// ---------------------------------------------------------------------------
// LeaveDomainRequest / LeaveDomainResponse
// ---------------------------------------------------------------------------

Element LeaveDomainRequest::to_xml() const {
  Element e("roap:leaveDomainRequest");
  e.add_text_child("roap:deviceID", device_id);
  e.add_text_child("roap:riID", ri_id);
  e.add_text_child("roap:domainID", domain_id);
  add_b64(e, "roap:deviceNonce", device_nonce);
  if (!signature.empty()) add_b64(e, "roap:signature", signature);
  return e;
}

Bytes LeaveDomainRequest::payload() const {
  return unsigned_payload(to_xml());
}

LeaveDomainRequest LeaveDomainRequest::from_xml(const Element& e) {
  if (e.name() != "roap:leaveDomainRequest") {
    throw Error(ErrorKind::kFormat,
                "roap: expected <roap:leaveDomainRequest>");
  }
  LeaveDomainRequest out;
  out.device_id = e.child_text("roap:deviceID");
  out.ri_id = e.child_text("roap:riID");
  out.domain_id = e.child_text("roap:domainID");
  out.device_nonce = get_b64(e, "roap:deviceNonce");
  out.signature = get_b64_optional(e, "roap:signature");
  return out;
}

Element LeaveDomainResponse::to_xml() const {
  Element e("roap:leaveDomainResponse");
  e.set_attr("status", to_string(status));
  e.add_text_child("roap:domainID", domain_id);
  add_b64(e, "roap:deviceNonce", device_nonce);
  if (!signature.empty()) add_b64(e, "roap:signature", signature);
  return e;
}

Bytes LeaveDomainResponse::payload() const {
  return unsigned_payload(to_xml());
}

LeaveDomainResponse LeaveDomainResponse::from_xml(const Element& e) {
  if (e.name() != "roap:leaveDomainResponse") {
    throw Error(ErrorKind::kFormat,
                "roap: expected <roap:leaveDomainResponse>");
  }
  LeaveDomainResponse out;
  out.status = status_from_string(e.require_attr("status"));
  out.domain_id = e.child_text("roap:domainID");
  out.device_nonce = get_b64(e, "roap:deviceNonce");
  out.signature = get_b64_optional(e, "roap:signature");
  return out;
}

// ---------------------------------------------------------------------------
// RoAcquisitionTrigger
// ---------------------------------------------------------------------------

Element RoAcquisitionTrigger::to_xml() const {
  Element e("roap:roAcquisitionTrigger");
  e.add_text_child("roap:riID", ri_id);
  e.add_text_child("roap:riURL", ri_url);
  e.add_text_child("roap:roID", ro_id);
  e.add_text_child("roap:contentID", content_id);
  if (!domain_id.empty()) e.add_text_child("roap:domainID", domain_id);
  return e;
}

RoAcquisitionTrigger RoAcquisitionTrigger::from_xml(const Element& e) {
  if (e.name() != "roap:roAcquisitionTrigger") {
    throw Error(ErrorKind::kFormat,
                "roap: expected <roap:roAcquisitionTrigger>");
  }
  RoAcquisitionTrigger out;
  out.ri_id = e.child_text("roap:riID");
  out.ri_url = e.child_text("roap:riURL");
  out.ro_id = e.child_text("roap:roID");
  out.content_id = e.child_text("roap:contentID");
  if (const Element* d = e.child("roap:domainID")) out.domain_id = d->text();
  return out;
}

}  // namespace omadrm::roap
