#include "roap/messages.h"

#include "common/base64.h"
#include "common/error.h"

namespace omadrm::roap {

using omadrm::Error;
using omadrm::ErrorKind;
using omadrm::StatusCode;
using xml::Element;
using xml::Node;
using xml::Writer;

const char* to_string(Status s) {
  switch (s) {
    case Status::kSuccess: return "Success";
    case Status::kAbort: return "Abort";
    case Status::kNotRegistered: return "NotRegistered";
    case Status::kSignatureInvalid: return "SignatureInvalid";
    case Status::kUnknownRoId: return "UnknownRoId";
    case Status::kAccessDenied: return "AccessDenied";
    case Status::kSessionExpired: return "SessionExpired";
    case Status::kStoreFailure: return "StoreFailure";
  }
  return "Abort";
}

omadrm::StatusCode status_code(Status s) {
  switch (s) {
    case Status::kSuccess: return StatusCode::kOk;
    case Status::kAbort: return StatusCode::kRiAborted;
    case Status::kNotRegistered: return StatusCode::kNotRegistered;
    case Status::kSignatureInvalid: return StatusCode::kSignatureInvalid;
    case Status::kUnknownRoId: return StatusCode::kUnknownRoId;
    case Status::kAccessDenied: return StatusCode::kAccessDenied;
    case Status::kSessionExpired: return StatusCode::kSessionExpired;
    case Status::kStoreFailure: return StatusCode::kStoreFailure;
  }
  return StatusCode::kRiAborted;
}

Status status_from_string(std::string_view s) {
  if (s == "Success") return Status::kSuccess;
  if (s == "Abort") return Status::kAbort;
  if (s == "NotRegistered") return Status::kNotRegistered;
  if (s == "SignatureInvalid") return Status::kSignatureInvalid;
  if (s == "UnknownRoId") return Status::kUnknownRoId;
  if (s == "AccessDenied") return Status::kAccessDenied;
  if (s == "SessionExpired") return Status::kSessionExpired;
  if (s == "StoreFailure") return Status::kStoreFailure;
  throw Error(ErrorKind::kFormat,
              "roap: unknown status '" + std::string(s) + "'");
}

namespace {

// ---------------------------------------------------------------------------
// Serialization helpers. Building (Writer) and decoding (the templates,
// instantiated for both the owning Element DOM and the zero-copy Node
// DOM) are the single source of truth for each message's wire shape;
// to_xml() re-parses the written bytes so the two DOMs can never drift.
// ---------------------------------------------------------------------------

template <typename E>
Bytes get_b64(const E& e, const char* name) {
  return base64_decode(e.child_text(name));
}

template <typename E>
Bytes get_b64_optional(const E& e, const char* name) {
  const auto* c = e.child(name);
  return c ? base64_decode(c->text()) : Bytes{};
}

void write_algorithms(Writer& w, const std::vector<std::string>& algs) {
  w.open("roap:supportedAlgorithms");
  for (const auto& a : algs) w.text_element("roap:algorithm", a);
  w.close();
}

template <typename E>
std::vector<std::string> get_algorithms(const E& e) {
  std::vector<std::string> out;
  if (const auto* list = e.child("roap:supportedAlgorithms")) {
    for (const auto* a : list->children_named("roap:algorithm")) {
      out.emplace_back(a->text());
    }
  }
  return out;
}

std::uint32_t parse_u32(std::string_view s) {
  std::uint64_t v = 0;
  if (s.empty()) throw Error(ErrorKind::kFormat, "roap: empty number");
  for (char c : s) {
    if (c < '0' || c > '9') {
      throw Error(ErrorKind::kFormat,
                  "roap: bad number '" + std::string(s) + "'");
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (v > 0xffffffffull) {
      throw Error(ErrorKind::kFormat, "roap: number overflow");
    }
  }
  return static_cast<std::uint32_t>(v);
}

rel::Rights rights_from(const Element& e) { return rel::Rights::from_xml(e); }
rel::Rights rights_from(const Node& e) { return rel::Rights::from_node(e); }

template <typename E>
void expect_root(const E& e, const char* root) {
  if (e.name() != std::string_view(root)) {
    throw Error(ErrorKind::kFormat,
                std::string("roap: expected <") + root + ">");
  }
}

// Thread-local scratch for payload() — the canonical unsigned
// serialization is streamed here, hashed/compared by the caller, and the
// buffer's capacity is reused by every later payload on the thread.
std::string& payload_scratch() {
  thread_local std::string s;
  return s;
}

template <typename Msg>
Bytes payload_of(const Msg& m) {
  std::string& s = payload_scratch();
  Writer w(s);
  m.write_payload(w);
  return to_bytes(s);
}

// to_xml() for every message: serialize with the Writer, parse back into
// an owning Element tree. Keeps one serializer while preserving the
// Element-based tooling/test surface.
template <typename Msg>
Element element_of(const Msg& m) {
  std::string s;
  Writer w(s);
  m.write(w);
  return xml::parse(s);
}

}  // namespace

// ---------------------------------------------------------------------------
// ProtectedRo
// ---------------------------------------------------------------------------

Bytes ProtectedRo::mac_payload() const {
  Bytes rights_bytes = to_bytes(rights.serialize());
  Bytes id_bytes = to_bytes(
      ri_id + "|" +
      (is_domain_ro ? domain_id + "#" + std::to_string(domain_generation)
                    : ""));
  return concat({rights_bytes, wrapped_keys, enc_kcek, id_bytes});
}

Bytes ProtectedRo::signed_payload() const {
  return concat({mac_payload(), mac});
}

void ProtectedRo::write(Writer& w) const {
  w.open("roap:protectedRO");
  rights.write(w);
  w.b64_element("roap:encKey", wrapped_keys);
  w.b64_element("roap:encCEK", enc_kcek);
  w.b64_element("roap:mac", mac);
  w.text_element("roap:riID", ri_id);
  if (is_domain_ro) {
    w.text_element("roap:domainID", domain_id);
    w.u64_element("roap:domainGeneration", domain_generation);
  }
  if (!signature.empty()) {
    w.b64_element("roap:signature", signature);
  }
  w.close();
}

Element ProtectedRo::to_xml() const { return element_of(*this); }

namespace {

template <typename E>
ProtectedRo protected_ro_from(const E& e) {
  expect_root(e, "roap:protectedRO");
  ProtectedRo out;
  out.rights = rights_from(e.require_child("o-ex:rights"));
  out.wrapped_keys = get_b64(e, "roap:encKey");
  out.enc_kcek = get_b64(e, "roap:encCEK");
  out.mac = get_b64(e, "roap:mac");
  out.ri_id = e.child_text("roap:riID");
  if (const auto* d = e.child("roap:domainID")) {
    out.is_domain_ro = true;
    out.domain_id = d->text();
    if (const auto* g = e.child("roap:domainGeneration")) {
      out.domain_generation = parse_u32(g->text());
    }
  }
  out.signature = get_b64_optional(e, "roap:signature");
  return out;
}

}  // namespace

ProtectedRo ProtectedRo::from_xml(const Element& e) {
  return protected_ro_from(e);
}

ProtectedRo ProtectedRo::from_node(const Node& e) {
  return protected_ro_from(e);
}

// ---------------------------------------------------------------------------
// DeviceHello / RiHello
// ---------------------------------------------------------------------------

void DeviceHello::write(Writer& w) const {
  w.open("roap:deviceHello");
  w.text_element("roap:deviceID", device_id);
  write_algorithms(w, algorithms);
  w.b64_element("roap:nonce", device_nonce);
  w.close();
}

Element DeviceHello::to_xml() const { return element_of(*this); }

namespace {

template <typename E>
DeviceHello device_hello_from(const E& e) {
  expect_root(e, "roap:deviceHello");
  DeviceHello out;
  out.device_id = e.child_text("roap:deviceID");
  out.algorithms = get_algorithms(e);
  out.device_nonce = get_b64(e, "roap:nonce");
  return out;
}

}  // namespace

DeviceHello DeviceHello::from_xml(const Element& e) {
  return device_hello_from(e);
}

DeviceHello DeviceHello::from_node(const Node& e) {
  return device_hello_from(e);
}

void RiHello::write(Writer& w) const {
  w.open("roap:riHello");
  w.attr("status", to_string(status));
  w.text_element("roap:riID", ri_id);
  w.text_element("roap:sessionID", session_id);
  write_algorithms(w, algorithms);
  w.b64_element("roap:nonce", ri_nonce);
  w.close();
}

Element RiHello::to_xml() const { return element_of(*this); }

namespace {

template <typename E>
RiHello ri_hello_from(const E& e) {
  expect_root(e, "roap:riHello");
  RiHello out;
  out.status = status_from_string(e.require_attr("status"));
  out.ri_id = e.child_text("roap:riID");
  out.session_id = e.child_text("roap:sessionID");
  out.algorithms = get_algorithms(e);
  out.ri_nonce = get_b64(e, "roap:nonce");
  return out;
}

}  // namespace

RiHello RiHello::from_xml(const Element& e) { return ri_hello_from(e); }

RiHello RiHello::from_node(const Node& e) { return ri_hello_from(e); }

// ---------------------------------------------------------------------------
// RegistrationRequest / RegistrationResponse
// ---------------------------------------------------------------------------

namespace {

void write_registration_request(const RegistrationRequest& m, Writer& w,
                                bool with_signature) {
  w.open("roap:registrationRequest");
  w.text_element("roap:sessionID", m.session_id);
  w.text_element("roap:deviceID", m.device_id);
  w.b64_element("roap:deviceNonce", m.device_nonce);
  w.b64_element("roap:riNonce", m.ri_nonce);
  w.b64_element("roap:certificate", m.certificate_der);
  w.b64_element("roap:ocspNonce", m.ocsp_nonce);
  if (with_signature && !m.signature.empty()) {
    w.b64_element("roap:signature", m.signature);
  }
  w.close();
}

template <typename E>
RegistrationRequest registration_request_from(const E& e) {
  expect_root(e, "roap:registrationRequest");
  RegistrationRequest out;
  out.session_id = e.child_text("roap:sessionID");
  out.device_id = e.child_text("roap:deviceID");
  out.device_nonce = get_b64(e, "roap:deviceNonce");
  out.ri_nonce = get_b64(e, "roap:riNonce");
  out.certificate_der = get_b64(e, "roap:certificate");
  out.ocsp_nonce = get_b64(e, "roap:ocspNonce");
  out.signature = get_b64_optional(e, "roap:signature");
  return out;
}

}  // namespace

void RegistrationRequest::write(Writer& w) const {
  write_registration_request(*this, w, true);
}

void RegistrationRequest::write_payload(Writer& w) const {
  write_registration_request(*this, w, false);
}

Element RegistrationRequest::to_xml() const { return element_of(*this); }

Bytes RegistrationRequest::payload() const { return payload_of(*this); }

RegistrationRequest RegistrationRequest::from_xml(const Element& e) {
  return registration_request_from(e);
}

RegistrationRequest RegistrationRequest::from_node(const Node& e) {
  return registration_request_from(e);
}

namespace {

void write_registration_response(const RegistrationResponse& m, Writer& w,
                                 bool with_signature) {
  w.open("roap:registrationResponse");
  w.attr("status", to_string(m.status));
  w.text_element("roap:sessionID", m.session_id);
  w.text_element("roap:riID", m.ri_id);
  w.text_element("roap:riURL", m.ri_url);
  w.b64_element("roap:certificate", m.ri_certificate_der);
  for (const Bytes& der : m.ri_certificate_chain_der) {
    w.b64_element("roap:chainCertificate", der);
  }
  w.b64_element("roap:ocspResponse", m.ocsp_response_der);
  if (with_signature && !m.signature.empty()) {
    w.b64_element("roap:signature", m.signature);
  }
  w.close();
}

template <typename E>
RegistrationResponse registration_response_from(const E& e) {
  expect_root(e, "roap:registrationResponse");
  RegistrationResponse out;
  out.status = status_from_string(e.require_attr("status"));
  out.session_id = e.child_text("roap:sessionID");
  out.ri_id = e.child_text("roap:riID");
  out.ri_url = e.child_text("roap:riURL");
  out.ri_certificate_der = get_b64(e, "roap:certificate");
  for (const auto* c : e.children_named("roap:chainCertificate")) {
    out.ri_certificate_chain_der.push_back(base64_decode(c->text()));
  }
  out.ocsp_response_der = get_b64(e, "roap:ocspResponse");
  out.signature = get_b64_optional(e, "roap:signature");
  return out;
}

}  // namespace

void RegistrationResponse::write(Writer& w) const {
  write_registration_response(*this, w, true);
}

void RegistrationResponse::write_payload(Writer& w) const {
  write_registration_response(*this, w, false);
}

Element RegistrationResponse::to_xml() const { return element_of(*this); }

Bytes RegistrationResponse::payload() const { return payload_of(*this); }

RegistrationResponse RegistrationResponse::from_xml(const Element& e) {
  return registration_response_from(e);
}

RegistrationResponse RegistrationResponse::from_node(const Node& e) {
  return registration_response_from(e);
}

// ---------------------------------------------------------------------------
// RoRequest / RoResponse
// ---------------------------------------------------------------------------

namespace {

void write_ro_request(const RoRequest& m, Writer& w, bool with_signature) {
  w.open("roap:roRequest");
  w.text_element("roap:deviceID", m.device_id);
  w.text_element("roap:riID", m.ri_id);
  w.text_element("roap:roID", m.ro_id);
  if (!m.domain_id.empty()) w.text_element("roap:domainID", m.domain_id);
  w.b64_element("roap:deviceNonce", m.device_nonce);
  if (with_signature && !m.signature.empty()) {
    w.b64_element("roap:signature", m.signature);
  }
  w.close();
}

template <typename E>
RoRequest ro_request_from(const E& e) {
  expect_root(e, "roap:roRequest");
  RoRequest out;
  out.device_id = e.child_text("roap:deviceID");
  out.ri_id = e.child_text("roap:riID");
  out.ro_id = e.child_text("roap:roID");
  if (const auto* d = e.child("roap:domainID")) out.domain_id = d->text();
  out.device_nonce = get_b64(e, "roap:deviceNonce");
  out.signature = get_b64_optional(e, "roap:signature");
  return out;
}

}  // namespace

void RoRequest::write(Writer& w) const { write_ro_request(*this, w, true); }

void RoRequest::write_payload(Writer& w) const {
  write_ro_request(*this, w, false);
}

Element RoRequest::to_xml() const { return element_of(*this); }

Bytes RoRequest::payload() const { return payload_of(*this); }

RoRequest RoRequest::from_xml(const Element& e) { return ro_request_from(e); }

RoRequest RoRequest::from_node(const Node& e) { return ro_request_from(e); }

namespace {

void write_ro_response(const RoResponse& m, Writer& w, bool with_signature) {
  w.open("roap:roResponse");
  w.attr("status", to_string(m.status));
  w.text_element("roap:deviceID", m.device_id);
  w.text_element("roap:riID", m.ri_id);
  w.b64_element("roap:deviceNonce", m.device_nonce);
  for (const auto& ro : m.ros) {
    ro.write(w);
  }
  if (with_signature && !m.signature.empty()) {
    w.b64_element("roap:signature", m.signature);
  }
  w.close();
}

template <typename E>
RoResponse ro_response_from(const E& e) {
  expect_root(e, "roap:roResponse");
  RoResponse out;
  out.status = status_from_string(e.require_attr("status"));
  out.device_id = e.child_text("roap:deviceID");
  out.ri_id = e.child_text("roap:riID");
  out.device_nonce = get_b64(e, "roap:deviceNonce");
  for (const auto* ro : e.children_named("roap:protectedRO")) {
    out.ros.push_back(protected_ro_from(*ro));
  }
  out.signature = get_b64_optional(e, "roap:signature");
  return out;
}

}  // namespace

void RoResponse::write(Writer& w) const { write_ro_response(*this, w, true); }

void RoResponse::write_payload(Writer& w) const {
  write_ro_response(*this, w, false);
}

Element RoResponse::to_xml() const { return element_of(*this); }

Bytes RoResponse::payload() const { return payload_of(*this); }

RoResponse RoResponse::from_xml(const Element& e) { return ro_response_from(e); }

RoResponse RoResponse::from_node(const Node& e) { return ro_response_from(e); }

// ---------------------------------------------------------------------------
// JoinDomainRequest / JoinDomainResponse
// ---------------------------------------------------------------------------

namespace {

void write_join_domain_request(const JoinDomainRequest& m, Writer& w,
                               bool with_signature) {
  w.open("roap:joinDomainRequest");
  w.text_element("roap:deviceID", m.device_id);
  w.text_element("roap:riID", m.ri_id);
  w.text_element("roap:domainID", m.domain_id);
  w.b64_element("roap:deviceNonce", m.device_nonce);
  if (with_signature && !m.signature.empty()) {
    w.b64_element("roap:signature", m.signature);
  }
  w.close();
}

template <typename E>
JoinDomainRequest join_domain_request_from(const E& e) {
  expect_root(e, "roap:joinDomainRequest");
  JoinDomainRequest out;
  out.device_id = e.child_text("roap:deviceID");
  out.ri_id = e.child_text("roap:riID");
  out.domain_id = e.child_text("roap:domainID");
  out.device_nonce = get_b64(e, "roap:deviceNonce");
  out.signature = get_b64_optional(e, "roap:signature");
  return out;
}

}  // namespace

void JoinDomainRequest::write(Writer& w) const {
  write_join_domain_request(*this, w, true);
}

void JoinDomainRequest::write_payload(Writer& w) const {
  write_join_domain_request(*this, w, false);
}

Element JoinDomainRequest::to_xml() const { return element_of(*this); }

Bytes JoinDomainRequest::payload() const { return payload_of(*this); }

JoinDomainRequest JoinDomainRequest::from_xml(const Element& e) {
  return join_domain_request_from(e);
}

JoinDomainRequest JoinDomainRequest::from_node(const Node& e) {
  return join_domain_request_from(e);
}

namespace {

void write_join_domain_response(const JoinDomainResponse& m, Writer& w,
                                bool with_signature) {
  w.open("roap:joinDomainResponse");
  w.attr("status", to_string(m.status));
  w.text_element("roap:domainID", m.domain_id);
  w.u64_element("roap:generation", m.generation);
  w.b64_element("roap:deviceNonce", m.device_nonce);
  w.b64_element("roap:domainKey", m.wrapped_domain_key);
  if (with_signature && !m.signature.empty()) {
    w.b64_element("roap:signature", m.signature);
  }
  w.close();
}

template <typename E>
JoinDomainResponse join_domain_response_from(const E& e) {
  expect_root(e, "roap:joinDomainResponse");
  JoinDomainResponse out;
  out.status = status_from_string(e.require_attr("status"));
  out.domain_id = e.child_text("roap:domainID");
  out.generation = parse_u32(e.child_text("roap:generation"));
  out.device_nonce = get_b64_optional(e, "roap:deviceNonce");
  out.wrapped_domain_key = get_b64(e, "roap:domainKey");
  out.signature = get_b64_optional(e, "roap:signature");
  return out;
}

}  // namespace

void JoinDomainResponse::write(Writer& w) const {
  write_join_domain_response(*this, w, true);
}

void JoinDomainResponse::write_payload(Writer& w) const {
  write_join_domain_response(*this, w, false);
}

Element JoinDomainResponse::to_xml() const { return element_of(*this); }

Bytes JoinDomainResponse::payload() const { return payload_of(*this); }

JoinDomainResponse JoinDomainResponse::from_xml(const Element& e) {
  return join_domain_response_from(e);
}

JoinDomainResponse JoinDomainResponse::from_node(const Node& e) {
  return join_domain_response_from(e);
}

// ---------------------------------------------------------------------------
// LeaveDomainRequest / LeaveDomainResponse
// ---------------------------------------------------------------------------

namespace {

void write_leave_domain_request(const LeaveDomainRequest& m, Writer& w,
                                bool with_signature) {
  w.open("roap:leaveDomainRequest");
  w.text_element("roap:deviceID", m.device_id);
  w.text_element("roap:riID", m.ri_id);
  w.text_element("roap:domainID", m.domain_id);
  w.b64_element("roap:deviceNonce", m.device_nonce);
  if (with_signature && !m.signature.empty()) {
    w.b64_element("roap:signature", m.signature);
  }
  w.close();
}

template <typename E>
LeaveDomainRequest leave_domain_request_from(const E& e) {
  expect_root(e, "roap:leaveDomainRequest");
  LeaveDomainRequest out;
  out.device_id = e.child_text("roap:deviceID");
  out.ri_id = e.child_text("roap:riID");
  out.domain_id = e.child_text("roap:domainID");
  out.device_nonce = get_b64(e, "roap:deviceNonce");
  out.signature = get_b64_optional(e, "roap:signature");
  return out;
}

}  // namespace

void LeaveDomainRequest::write(Writer& w) const {
  write_leave_domain_request(*this, w, true);
}

void LeaveDomainRequest::write_payload(Writer& w) const {
  write_leave_domain_request(*this, w, false);
}

Element LeaveDomainRequest::to_xml() const { return element_of(*this); }

Bytes LeaveDomainRequest::payload() const { return payload_of(*this); }

LeaveDomainRequest LeaveDomainRequest::from_xml(const Element& e) {
  return leave_domain_request_from(e);
}

LeaveDomainRequest LeaveDomainRequest::from_node(const Node& e) {
  return leave_domain_request_from(e);
}

namespace {

void write_leave_domain_response(const LeaveDomainResponse& m, Writer& w,
                                 bool with_signature) {
  w.open("roap:leaveDomainResponse");
  w.attr("status", to_string(m.status));
  w.text_element("roap:domainID", m.domain_id);
  w.b64_element("roap:deviceNonce", m.device_nonce);
  if (with_signature && !m.signature.empty()) {
    w.b64_element("roap:signature", m.signature);
  }
  w.close();
}

template <typename E>
LeaveDomainResponse leave_domain_response_from(const E& e) {
  expect_root(e, "roap:leaveDomainResponse");
  LeaveDomainResponse out;
  out.status = status_from_string(e.require_attr("status"));
  out.domain_id = e.child_text("roap:domainID");
  out.device_nonce = get_b64(e, "roap:deviceNonce");
  out.signature = get_b64_optional(e, "roap:signature");
  return out;
}

}  // namespace

void LeaveDomainResponse::write(Writer& w) const {
  write_leave_domain_response(*this, w, true);
}

void LeaveDomainResponse::write_payload(Writer& w) const {
  write_leave_domain_response(*this, w, false);
}

Element LeaveDomainResponse::to_xml() const { return element_of(*this); }

Bytes LeaveDomainResponse::payload() const { return payload_of(*this); }

LeaveDomainResponse LeaveDomainResponse::from_xml(const Element& e) {
  return leave_domain_response_from(e);
}

LeaveDomainResponse LeaveDomainResponse::from_node(const Node& e) {
  return leave_domain_response_from(e);
}

// ---------------------------------------------------------------------------
// RoAcquisitionTrigger
// ---------------------------------------------------------------------------

void RoAcquisitionTrigger::write(Writer& w) const {
  w.open("roap:roAcquisitionTrigger");
  w.text_element("roap:riID", ri_id);
  w.text_element("roap:riURL", ri_url);
  w.text_element("roap:roID", ro_id);
  w.text_element("roap:contentID", content_id);
  if (!domain_id.empty()) w.text_element("roap:domainID", domain_id);
  w.close();
}

Element RoAcquisitionTrigger::to_xml() const { return element_of(*this); }

namespace {

template <typename E>
RoAcquisitionTrigger trigger_from(const E& e) {
  expect_root(e, "roap:roAcquisitionTrigger");
  RoAcquisitionTrigger out;
  out.ri_id = e.child_text("roap:riID");
  out.ri_url = e.child_text("roap:riURL");
  out.ro_id = e.child_text("roap:roID");
  out.content_id = e.child_text("roap:contentID");
  if (const auto* d = e.child("roap:domainID")) out.domain_id = d->text();
  return out;
}

}  // namespace

RoAcquisitionTrigger RoAcquisitionTrigger::from_xml(const Element& e) {
  return trigger_from(e);
}

RoAcquisitionTrigger RoAcquisitionTrigger::from_node(const Node& e) {
  return trigger_from(e);
}

}  // namespace omadrm::roap
