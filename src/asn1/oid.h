// Object identifiers used by the PKI substrate.
#pragma once

namespace omadrm::asn1::oid {

// PKCS#1 RSASSA-PSS signature algorithm.
inline constexpr const char* kRsassaPss = "1.2.840.113549.1.1.10";
// rsaEncryption (used for SubjectPublicKeyInfo).
inline constexpr const char* kRsaEncryption = "1.2.840.113549.1.1.1";
// SHA-1.
inline constexpr const char* kSha1 = "1.3.14.3.2.26";
// id-pkix-ocsp-basic.
inline constexpr const char* kOcspBasic = "1.3.6.1.5.5.7.48.1.1";
// X.520 commonName attribute.
inline constexpr const char* kCommonName = "2.5.4.3";

}  // namespace omadrm::asn1::oid
