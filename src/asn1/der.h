// Minimal ASN.1 DER encoder / decoder.
//
// Covers the subset needed for the X.509-profile certificates and OCSP
// responses of the PKI substrate: BOOLEAN, INTEGER (incl. bignums),
// BIT STRING, OCTET STRING, NULL, OBJECT IDENTIFIER, UTF8String,
// PrintableString, UTCTime-as-epoch, SEQUENCE, SET, and context-specific
// constructed tags. Encoding is strict DER (definite lengths, minimal
// integer encoding); the decoder rejects non-canonical forms it can detect.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bigint/bigint.h"
#include "common/bytes.h"

namespace omadrm::asn1 {

enum class Tag : std::uint8_t {
  kBoolean = 0x01,
  kInteger = 0x02,
  kBitString = 0x03,
  kOctetString = 0x04,
  kNull = 0x05,
  kOid = 0x06,
  kUtf8String = 0x0c,
  kPrintableString = 0x13,
  kUtcTime = 0x17,
  kSequence = 0x30,
  kSet = 0x31,
};

/// Returns the context-specific constructed tag [n].
std::uint8_t context_tag(unsigned n);

// ---------------------------------------------------------------------------
// Encoder: append-style builder producing a DER byte string.
// ---------------------------------------------------------------------------
class Encoder {
 public:
  /// Raw TLV with an arbitrary tag byte.
  void write_tlv(std::uint8_t tag, ByteView content);

  void write_boolean(bool v);
  void write_integer(std::int64_t v);
  void write_integer(const bigint::BigInt& v);
  void write_bit_string(ByteView bits);   // always 0 unused bits
  void write_octet_string(ByteView data);
  void write_null();
  void write_oid(const std::string& dotted);  // e.g. "1.2.840.113549.1.1.10"
  void write_utf8_string(const std::string& s);
  void write_printable_string(const std::string& s);
  void write_utc_time(std::uint64_t unix_seconds);

  /// Nests a fully-encoded child under SEQUENCE / SET / [n].
  void write_sequence(ByteView encoded_children);
  void write_set(ByteView encoded_children);
  void write_explicit(unsigned n, ByteView encoded_child);

  const Bytes& bytes() const { return out_; }
  Bytes take() { return std::move(out_); }

 private:
  void write_length(std::size_t len);
  Bytes out_;
};

// ---------------------------------------------------------------------------
// Decoder: cursor over a DER byte string. All read_* methods throw
// omadrm::Error(kFormat) on malformed or unexpected input.
// ---------------------------------------------------------------------------
class Decoder {
 public:
  explicit Decoder(ByteView data) : data_(data) {}

  bool at_end() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  /// Tag byte of the next TLV without consuming it.
  std::uint8_t peek_tag() const;

  /// Reads the next TLV with the expected tag; returns its content.
  ByteView read_tlv(std::uint8_t expected_tag);

  bool read_boolean();
  std::int64_t read_small_integer();
  bigint::BigInt read_integer();
  Bytes read_bit_string();
  Bytes read_octet_string();
  void read_null();
  std::string read_oid();
  std::string read_utf8_string();
  std::string read_printable_string();
  std::uint64_t read_utc_time();

  /// Enters a SEQUENCE / SET / [n]; returns a sub-decoder over its content.
  Decoder read_sequence();
  Decoder read_set();
  Decoder read_explicit(unsigned n);

  /// Consumes and returns the complete next TLV (tag + length + content),
  /// useful for re-hashing signed substructures byte-exactly.
  Bytes read_raw_tlv();

 private:
  std::uint8_t read_byte();
  std::size_t read_length();

  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace omadrm::asn1
