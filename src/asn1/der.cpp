#include "asn1/der.h"

#include <cstdio>

#include "common/error.h"

namespace omadrm::asn1 {

using omadrm::Error;
using omadrm::ErrorKind;

std::uint8_t context_tag(unsigned n) {
  if (n > 30) throw Error(ErrorKind::kRange, "context tag > 30 unsupported");
  return static_cast<std::uint8_t>(0xa0 | n);
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

void Encoder::write_length(std::size_t len) {
  if (len < 0x80) {
    out_.push_back(static_cast<std::uint8_t>(len));
    return;
  }
  // Long form: count significant bytes.
  std::uint8_t buf[8];
  int n = 0;
  std::size_t v = len;
  while (v > 0) {
    buf[n++] = static_cast<std::uint8_t>(v);
    v >>= 8;
  }
  out_.push_back(static_cast<std::uint8_t>(0x80 | n));
  for (int i = n; i-- > 0;) out_.push_back(buf[i]);
}

void Encoder::write_tlv(std::uint8_t tag, ByteView content) {
  out_.push_back(tag);
  write_length(content.size());
  out_.insert(out_.end(), content.begin(), content.end());
}

void Encoder::write_boolean(bool v) {
  std::uint8_t b = v ? 0xff : 0x00;
  write_tlv(static_cast<std::uint8_t>(Tag::kBoolean), ByteView(&b, 1));
}

void Encoder::write_integer(std::int64_t v) {
  // Two's-complement big-endian, minimal length.
  Bytes content;
  bool negative = v < 0;
  std::uint64_t u = static_cast<std::uint64_t>(v);
  for (int i = 7; i >= 0; --i) {
    content.push_back(static_cast<std::uint8_t>(u >> (8 * i)));
  }
  std::size_t start = 0;
  while (start + 1 < content.size()) {
    bool redundant = negative
                         ? (content[start] == 0xff && (content[start + 1] & 0x80))
                         : (content[start] == 0x00 && !(content[start + 1] & 0x80));
    if (!redundant) break;
    ++start;
  }
  write_tlv(static_cast<std::uint8_t>(Tag::kInteger),
            ByteView(content).subspan(start));
}

void Encoder::write_integer(const bigint::BigInt& v) {
  if (v.is_negative()) {
    throw Error(ErrorKind::kRange, "DER bignum: negative unsupported");
  }
  Bytes mag = v.to_bytes_be();
  // Prepend 0x00 if the top bit is set (value is positive).
  if (mag[0] & 0x80) mag.insert(mag.begin(), 0x00);
  write_tlv(static_cast<std::uint8_t>(Tag::kInteger), mag);
}

void Encoder::write_bit_string(ByteView bits) {
  Bytes content;
  content.reserve(bits.size() + 1);
  content.push_back(0);  // no unused bits
  content.insert(content.end(), bits.begin(), bits.end());
  write_tlv(static_cast<std::uint8_t>(Tag::kBitString), content);
}

void Encoder::write_octet_string(ByteView data) {
  write_tlv(static_cast<std::uint8_t>(Tag::kOctetString), data);
}

void Encoder::write_null() {
  write_tlv(static_cast<std::uint8_t>(Tag::kNull), {});
}

void Encoder::write_oid(const std::string& dotted) {
  std::vector<std::uint64_t> arcs;
  std::uint64_t cur = 0;
  bool have_digit = false;
  for (char c : dotted) {
    if (c == '.') {
      if (!have_digit) throw Error(ErrorKind::kFormat, "OID: empty arc");
      arcs.push_back(cur);
      cur = 0;
      have_digit = false;
    } else if (c >= '0' && c <= '9') {
      cur = cur * 10 + static_cast<std::uint64_t>(c - '0');
      have_digit = true;
    } else {
      throw Error(ErrorKind::kFormat, "OID: invalid character");
    }
  }
  if (!have_digit) throw Error(ErrorKind::kFormat, "OID: trailing dot");
  arcs.push_back(cur);
  if (arcs.size() < 2 || arcs[0] > 2 || (arcs[0] < 2 && arcs[1] > 39)) {
    throw Error(ErrorKind::kFormat, "OID: invalid first arcs");
  }
  Bytes content;
  auto push_base128 = [&content](std::uint64_t v) {
    std::uint8_t buf[10];
    int n = 0;
    do {
      buf[n++] = static_cast<std::uint8_t>(v & 0x7f);
      v >>= 7;
    } while (v > 0);
    for (int i = n; i-- > 0;) {
      content.push_back(static_cast<std::uint8_t>(buf[i] | (i ? 0x80 : 0)));
    }
  };
  push_base128(arcs[0] * 40 + arcs[1]);
  for (std::size_t i = 2; i < arcs.size(); ++i) push_base128(arcs[i]);
  write_tlv(static_cast<std::uint8_t>(Tag::kOid), content);
}

void Encoder::write_utf8_string(const std::string& s) {
  write_tlv(static_cast<std::uint8_t>(Tag::kUtf8String), to_bytes(s));
}

void Encoder::write_printable_string(const std::string& s) {
  write_tlv(static_cast<std::uint8_t>(Tag::kPrintableString), to_bytes(s));
}

void Encoder::write_utc_time(std::uint64_t unix_seconds) {
  // Render as YYMMDDHHMMSSZ. Civil-time conversion from days since epoch
  // (Howard Hinnant's algorithm).
  std::uint64_t days = unix_seconds / 86400;
  std::uint64_t secs = unix_seconds % 86400;
  std::int64_t z = static_cast<std::int64_t>(days) + 719468;
  std::int64_t era = z / 146097;
  std::int64_t doe = z - era * 146097;
  std::int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  std::int64_t y = yoe + era * 400;
  std::int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  std::int64_t mp = (5 * doy + 2) / 153;
  std::int64_t d = doy - (153 * mp + 2) / 5 + 1;
  std::int64_t m = mp + (mp < 10 ? 3 : -9);
  y += (m <= 2);
  char buf[16];
  std::snprintf(buf, sizeof buf, "%02d%02d%02d%02d%02d%02dZ",
                static_cast<int>(y % 100), static_cast<int>(m),
                static_cast<int>(d), static_cast<int>(secs / 3600),
                static_cast<int>((secs / 60) % 60),
                static_cast<int>(secs % 60));
  write_tlv(static_cast<std::uint8_t>(Tag::kUtcTime), to_bytes(buf));
}

void Encoder::write_sequence(ByteView encoded_children) {
  write_tlv(static_cast<std::uint8_t>(Tag::kSequence), encoded_children);
}

void Encoder::write_set(ByteView encoded_children) {
  write_tlv(static_cast<std::uint8_t>(Tag::kSet), encoded_children);
}

void Encoder::write_explicit(unsigned n, ByteView encoded_child) {
  write_tlv(context_tag(n), encoded_child);
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

std::uint8_t Decoder::read_byte() {
  if (pos_ >= data_.size()) {
    throw Error(ErrorKind::kFormat, "DER: unexpected end of input");
  }
  return data_[pos_++];
}

std::size_t Decoder::read_length() {
  std::uint8_t first = read_byte();
  if (first < 0x80) return first;
  std::size_t n = first & 0x7f;
  if (n == 0 || n > sizeof(std::size_t)) {
    throw Error(ErrorKind::kFormat, "DER: unsupported length form");
  }
  std::size_t len = 0;
  for (std::size_t i = 0; i < n; ++i) {
    len = (len << 8) | read_byte();
  }
  if (len < 0x80) {
    throw Error(ErrorKind::kFormat, "DER: non-minimal length encoding");
  }
  return len;
}

std::uint8_t Decoder::peek_tag() const {
  if (pos_ >= data_.size()) {
    throw Error(ErrorKind::kFormat, "DER: peek at end of input");
  }
  return data_[pos_];
}

ByteView Decoder::read_tlv(std::uint8_t expected_tag) {
  std::uint8_t tag = read_byte();
  if (tag != expected_tag) {
    throw Error(ErrorKind::kFormat, "DER: unexpected tag");
  }
  std::size_t len = read_length();
  if (len > remaining()) {
    throw Error(ErrorKind::kFormat, "DER: length exceeds input");
  }
  ByteView content = data_.subspan(pos_, len);
  pos_ += len;
  return content;
}

Bytes Decoder::read_raw_tlv() {
  std::size_t start = pos_;
  std::uint8_t tag = read_byte();
  (void)tag;
  std::size_t len = read_length();
  if (len > remaining()) {
    throw Error(ErrorKind::kFormat, "DER: length exceeds input");
  }
  pos_ += len;
  return Bytes(data_.begin() + static_cast<std::ptrdiff_t>(start),
               data_.begin() + static_cast<std::ptrdiff_t>(pos_));
}

bool Decoder::read_boolean() {
  ByteView c = read_tlv(static_cast<std::uint8_t>(Tag::kBoolean));
  if (c.size() != 1) throw Error(ErrorKind::kFormat, "DER: bad boolean");
  if (c[0] != 0x00 && c[0] != 0xff) {
    throw Error(ErrorKind::kFormat, "DER: non-canonical boolean");
  }
  return c[0] == 0xff;
}

std::int64_t Decoder::read_small_integer() {
  ByteView c = read_tlv(static_cast<std::uint8_t>(Tag::kInteger));
  if (c.empty() || c.size() > 8) {
    throw Error(ErrorKind::kFormat, "DER: integer size unsupported");
  }
  std::int64_t v = (c[0] & 0x80) ? -1 : 0;
  for (std::uint8_t b : c) v = (v << 8) | b;
  return v;
}

bigint::BigInt Decoder::read_integer() {
  ByteView c = read_tlv(static_cast<std::uint8_t>(Tag::kInteger));
  if (c.empty()) throw Error(ErrorKind::kFormat, "DER: empty integer");
  if (c[0] & 0x80) {
    throw Error(ErrorKind::kFormat, "DER: negative bignum unsupported");
  }
  return bigint::BigInt::from_bytes_be(c);
}

Bytes Decoder::read_bit_string() {
  ByteView c = read_tlv(static_cast<std::uint8_t>(Tag::kBitString));
  if (c.empty() || c[0] != 0) {
    throw Error(ErrorKind::kFormat, "DER: only byte-aligned bit strings");
  }
  return Bytes(c.begin() + 1, c.end());
}

Bytes Decoder::read_octet_string() {
  ByteView c = read_tlv(static_cast<std::uint8_t>(Tag::kOctetString));
  return Bytes(c.begin(), c.end());
}

void Decoder::read_null() {
  ByteView c = read_tlv(static_cast<std::uint8_t>(Tag::kNull));
  if (!c.empty()) throw Error(ErrorKind::kFormat, "DER: non-empty null");
}

std::string Decoder::read_oid() {
  ByteView c = read_tlv(static_cast<std::uint8_t>(Tag::kOid));
  if (c.empty()) throw Error(ErrorKind::kFormat, "DER: empty OID");
  std::vector<std::uint64_t> arcs;
  std::uint64_t cur = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    cur = (cur << 7) | (c[i] & 0x7f);
    if (!(c[i] & 0x80)) {
      arcs.push_back(cur);
      cur = 0;
    } else if (i + 1 == c.size()) {
      throw Error(ErrorKind::kFormat, "DER: truncated OID arc");
    }
  }
  std::string out;
  std::uint64_t first = arcs[0];
  std::uint64_t a0 = first < 40 ? 0 : (first < 80 ? 1 : 2);
  std::uint64_t a1 = first - a0 * 40;
  out = std::to_string(a0) + "." + std::to_string(a1);
  for (std::size_t i = 1; i < arcs.size(); ++i) {
    out += "." + std::to_string(arcs[i]);
  }
  return out;
}

std::string Decoder::read_utf8_string() {
  ByteView c = read_tlv(static_cast<std::uint8_t>(Tag::kUtf8String));
  return to_string(c);
}

std::string Decoder::read_printable_string() {
  ByteView c = read_tlv(static_cast<std::uint8_t>(Tag::kPrintableString));
  return to_string(c);
}

std::uint64_t Decoder::read_utc_time() {
  ByteView c = read_tlv(static_cast<std::uint8_t>(Tag::kUtcTime));
  if (c.size() != 13 || c.back() != 'Z') {
    throw Error(ErrorKind::kFormat, "DER: bad UTCTime");
  }
  auto digit2 = [&](std::size_t i) -> int {
    if (c[i] < '0' || c[i] > '9' || c[i + 1] < '0' || c[i + 1] > '9') {
      throw Error(ErrorKind::kFormat, "DER: bad UTCTime digit");
    }
    return (c[i] - '0') * 10 + (c[i + 1] - '0');
  };
  int yy = digit2(0);
  // RFC 5280 sliding window: 00-49 => 20xx, 50-99 => 19xx.
  int year = yy < 50 ? 2000 + yy : 1900 + yy;
  int month = digit2(2), day = digit2(4);
  int hour = digit2(6), minute = digit2(8), second = digit2(10);
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour > 23 ||
      minute > 59 || second > 60) {
    throw Error(ErrorKind::kFormat, "DER: UTCTime out of range");
  }
  // Inverse of the civil-time algorithm in the encoder.
  std::int64_t y = year;
  std::int64_t m = month;
  std::int64_t d = day;
  y -= m <= 2;
  std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  std::int64_t yoe = y - era * 400;
  std::int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  std::int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  std::int64_t days = era * 146097 + doe - 719468;
  return static_cast<std::uint64_t>(days) * 86400 +
         static_cast<std::uint64_t>(hour) * 3600 +
         static_cast<std::uint64_t>(minute) * 60 +
         static_cast<std::uint64_t>(second);
}

Decoder Decoder::read_sequence() {
  return Decoder(read_tlv(static_cast<std::uint8_t>(Tag::kSequence)));
}

Decoder Decoder::read_set() {
  return Decoder(read_tlv(static_cast<std::uint8_t>(Tag::kSet)));
}

Decoder Decoder::read_explicit(unsigned n) {
  return Decoder(read_tlv(context_tag(n)));
}

}  // namespace omadrm::asn1
