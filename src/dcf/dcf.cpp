#include "dcf/dcf.h"

#include "common/error.h"
#include "crypto/modes.h"
#include "crypto/sha1.h"

namespace omadrm::dcf {

using omadrm::Error;
using omadrm::ErrorKind;

namespace {

constexpr char kMagic[4] = {'O', 'D', 'C', 'F'};
constexpr std::uint8_t kVersion = 2;

void put_u16(Bytes& out, std::size_t v) {
  if (v > 0xffff) throw Error(ErrorKind::kRange, "dcf: field too long");
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_string(Bytes& out, const std::string& s) {
  put_u16(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>((data_[pos_] << 8) |
                                                 data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = load_be32(data_.data() + pos_);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = load_be64(data_.data() + pos_);
    pos_ += 8;
    return v;
  }
  std::string str() {
    std::uint16_t len = u16();
    need(len);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }
  Bytes raw(std::size_t len) {
    need(len);
    Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return b;
  }
  bool at_end() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw Error(ErrorKind::kFormat, "dcf: truncated container");
    }
  }
  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace

Dcf::Dcf(Headers headers, Bytes iv, Bytes encrypted_payload,
         std::uint64_t plaintext_size)
    : headers_(std::move(headers)),
      iv_(std::move(iv)),
      payload_(std::move(encrypted_payload)),
      plaintext_size_(plaintext_size) {
  if (iv_.size() != 16) {
    throw Error(ErrorKind::kCrypto, "dcf: IV must be 16 bytes");
  }
}

Bytes Dcf::serialize() const {
  Bytes out;
  out.reserve(64 + payload_.size());
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kVersion);
  put_string(out, headers_.content_type);
  put_string(out, headers_.content_id);
  put_string(out, headers_.rights_issuer_url);
  put_u16(out, headers_.textual.size());
  for (const auto& [k, v] : headers_.textual) {
    put_string(out, k);
    put_string(out, v);
  }
  out.insert(out.end(), iv_.begin(), iv_.end());
  std::uint8_t sz[8];
  store_be64(plaintext_size_, sz);
  out.insert(out.end(), sz, sz + 8);
  if (payload_.size() > 0xffffffffull) {
    throw Error(ErrorKind::kRange, "dcf: payload too large");
  }
  std::uint8_t psz[4];
  store_be32(static_cast<std::uint32_t>(payload_.size()), psz);
  out.insert(out.end(), psz, psz + 4);
  out.insert(out.end(), payload_.begin(), payload_.end());
  return out;
}

Dcf Dcf::parse(ByteView data) {
  Reader r(data);
  Bytes magic = r.raw(4);
  if (!std::equal(magic.begin(), magic.end(), kMagic)) {
    throw Error(ErrorKind::kFormat, "dcf: bad magic");
  }
  if (r.u8() != kVersion) {
    throw Error(ErrorKind::kFormat, "dcf: unsupported version");
  }
  Dcf out;
  out.headers_.content_type = r.str();
  out.headers_.content_id = r.str();
  out.headers_.rights_issuer_url = r.str();
  std::uint16_t n_headers = r.u16();
  for (std::uint16_t i = 0; i < n_headers; ++i) {
    std::string k = r.str();
    std::string v = r.str();
    out.headers_.textual.emplace_back(std::move(k), std::move(v));
  }
  out.iv_ = r.raw(16);
  out.plaintext_size_ = r.u64();
  std::uint32_t payload_len = r.u32();
  out.payload_ = r.raw(payload_len);
  if (!r.at_end()) {
    throw Error(ErrorKind::kFormat, "dcf: trailing bytes");
  }
  return out;
}

Bytes Dcf::hash() const { return crypto::Sha1::hash(serialize()); }

bool Dcf::operator==(const Dcf& other) const {
  return headers_ == other.headers_ && iv_ == other.iv_ &&
         payload_ == other.payload_ &&
         plaintext_size_ == other.plaintext_size_;
}

Dcf make_dcf(Headers headers, ByteView plaintext, ByteView kcek,
             ByteView iv) {
  Bytes payload = crypto::aes_cbc_encrypt(kcek, iv, plaintext);
  return Dcf(std::move(headers), Bytes(iv.begin(), iv.end()),
             std::move(payload), plaintext.size());
}

Bytes decrypt_dcf(const Dcf& dcf, ByteView kcek) {
  Bytes plain = crypto::aes_cbc_decrypt(kcek, dcf.iv(),
                                        dcf.encrypted_payload());
  if (plain.size() != dcf.plaintext_size()) {
    throw Error(ErrorKind::kFormat, "dcf: plaintext size mismatch");
  }
  return plain;
}

}  // namespace omadrm::dcf
