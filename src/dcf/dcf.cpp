#include "dcf/dcf.h"

#include "common/error.h"
#include "crypto/modes.h"
#include "crypto/sha1.h"
#include "dcf/dcf_reader.h"

namespace omadrm::dcf {

using omadrm::Error;
using omadrm::ErrorKind;

namespace {

constexpr char kMagic[4] = {'O', 'D', 'C', 'F'};
constexpr std::uint8_t kVersion = 2;

void put_u16(Bytes& out, std::size_t v) {
  if (v > 0xffff) throw Error(ErrorKind::kRange, "dcf: field too long");
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_string(Bytes& out, const std::string& s) {
  put_u16(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

}  // namespace

Dcf::Dcf(Headers headers, Bytes iv, Bytes encrypted_payload,
         std::uint64_t plaintext_size)
    : headers_(std::move(headers)),
      iv_(std::move(iv)),
      payload_(std::move(encrypted_payload)),
      plaintext_size_(plaintext_size) {
  if (iv_.size() != 16) {
    throw Error(ErrorKind::kCrypto, "dcf: IV must be 16 bytes");
  }
}

Bytes Dcf::serialize() const {
  Bytes out;
  out.reserve(64 + payload_.size());
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kVersion);
  put_string(out, headers_.content_type);
  put_string(out, headers_.content_id);
  put_string(out, headers_.rights_issuer_url);
  put_u16(out, headers_.textual.size());
  for (const auto& [k, v] : headers_.textual) {
    put_string(out, k);
    put_string(out, v);
  }
  out.insert(out.end(), iv_.begin(), iv_.end());
  std::uint8_t sz[8];
  store_be64(plaintext_size_, sz);
  out.insert(out.end(), sz, sz + 8);
  if (payload_.size() > 0xffffffffull) {
    throw Error(ErrorKind::kRange, "dcf: payload too large");
  }
  std::uint8_t psz[4];
  store_be32(static_cast<std::uint32_t>(payload_.size()), psz);
  out.insert(out.end(), psz, psz + 4);
  out.insert(out.end(), payload_.begin(), payload_.end());
  return out;
}

// One parser for the format: the zero-copy DcfReader walks the wire and
// this owned variant copies out of its views — the two paths cannot
// drift, and the reader's single-pass hash seeds the cache for free.
Dcf Dcf::parse(ByteView data) {
  DcfReader r = DcfReader::parse(data);
  Dcf out;
  out.headers_.content_type = std::string(r.content_type());
  out.headers_.content_id = std::string(r.content_id());
  out.headers_.rights_issuer_url = std::string(r.rights_issuer_url());
  out.headers_.textual.reserve(r.textual().size());
  for (const auto& [k, v] : r.textual()) {
    out.headers_.textual.emplace_back(std::string(k), std::string(v));
  }
  out.iv_ = Bytes(r.iv().begin(), r.iv().end());
  out.plaintext_size_ = r.plaintext_size();
  out.payload_ =
      Bytes(r.encrypted_payload().begin(), r.encrypted_payload().end());
  out.hash_cache_ = Bytes(r.hash().begin(), r.hash().end());
  return out;
}

std::size_t Dcf::serialized_size() const {
  std::size_t n = 4 + 1;  // magic + version
  n += 2 + headers_.content_type.size();
  n += 2 + headers_.content_id.size();
  n += 2 + headers_.rights_issuer_url.size();
  n += 2;  // textual header count
  for (const auto& [k, v] : headers_.textual) {
    n += 2 + k.size() + 2 + v.size();
  }
  return n + 16 + 8 + 4 + payload_.size();  // iv + sizes + payload
}

const Bytes& Dcf::hash() const {
  if (hash_cache_.empty()) {
    hash_cache_ = crypto::Sha1::hash(serialize());
  }
  return hash_cache_;
}

bool Dcf::operator==(const Dcf& other) const {
  return headers_ == other.headers_ && iv_ == other.iv_ &&
         payload_ == other.payload_ &&
         plaintext_size_ == other.plaintext_size_;
}

Dcf make_dcf(Headers headers, ByteView plaintext, ByteView kcek,
             ByteView iv) {
  Bytes payload = crypto::aes_cbc_encrypt(kcek, iv, plaintext);
  return Dcf(std::move(headers), Bytes(iv.begin(), iv.end()),
             std::move(payload), plaintext.size());
}

Bytes decrypt_dcf(const Dcf& dcf, ByteView kcek) {
  Bytes plain = crypto::aes_cbc_decrypt(kcek, dcf.iv(),
                                        dcf.encrypted_payload());
  if (plain.size() != dcf.plaintext_size()) {
    throw Error(ErrorKind::kFormat, "dcf: plaintext size mismatch");
  }
  return plain;
}

}  // namespace omadrm::dcf
