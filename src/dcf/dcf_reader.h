// DcfReader — zero-copy access to a serialized DCF container.
//
// Dcf::parse copies every header and the (potentially multi-megabyte)
// payload into owned buffers, and the container hash used for RO binding
// historically required re-serializing the whole thing. That is fine for
// packaging tools; it is the wrong shape for a player that opens the same
// container on every access. DcfReader walks the serialized bytes once:
// headers come out as string_views aliasing the wire, the IV and the
// encrypted payload as ByteViews, and SHA-1 over the container — the
// value a Rights Object binds to — falls out of the same pass through the
// incremental Sha1 API. No re-serialization, no payload copy, ever.
//
// The reader *borrows* `wire`: the buffer must stay alive and unmodified
// for the reader's lifetime, and for the lifetime of any ContentSession
// the DRM agent opens over it.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "crypto/sha1.h"
#include "dcf/dcf.h"

namespace omadrm::dcf {

class DcfReader {
 public:
  /// Parses a serialized container in place. Throws omadrm::Error(kFormat)
  /// on malformed input — same failure cases as Dcf::parse.
  static DcfReader parse(ByteView wire);

  std::string_view content_type() const { return content_type_; }
  std::string_view content_id() const { return content_id_; }
  std::string_view rights_issuer_url() const { return rights_issuer_url_; }
  const std::vector<std::pair<std::string_view, std::string_view>>& textual()
      const {
    return textual_;
  }

  ByteView iv() const { return iv_; }
  ByteView encrypted_payload() const { return payload_; }
  std::uint64_t plaintext_size() const { return plaintext_size_; }

  /// The borrowed serialized container.
  ByteView wire() const { return wire_; }

  /// SHA-1 over the container bytes — identical to Dcf::hash(), computed
  /// once during parse.
  ByteView hash() const { return ByteView(hash_, crypto::Sha1::kDigestSize); }

  /// Owned deep copy for callers that outlive the wire buffer.
  Dcf to_dcf() const { return Dcf::parse(wire_); }

 private:
  DcfReader() = default;

  ByteView wire_;
  std::string_view content_type_;
  std::string_view content_id_;
  std::string_view rights_issuer_url_;
  std::vector<std::pair<std::string_view, std::string_view>> textual_;
  ByteView iv_;
  ByteView payload_;
  std::uint64_t plaintext_size_ = 0;
  std::uint8_t hash_[crypto::Sha1::kDigestSize] = {};
};

}  // namespace omadrm::dcf
