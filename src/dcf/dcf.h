// DCF — the DRM Content Format.
//
// The Content Issuer packages digital content into a DCF: descriptive
// headers in clear (content type, ContentID, the RightsIssuerURL the user
// visits to buy a license, plus free-form textual headers like title and
// author) and the content itself encrypted under the Content Encryption
// Key K_CEK with AES-128-CBC. The serialized container is the unit the
// Rights Object binds to: the RO carries SHA-1(DCF), and the DRM Agent
// recomputes that hash on every access (paper §2.4.4 step 3).
//
// Binary layout (all integers big-endian):
//   magic "ODCF" | version u8 (=2) | content_type | content_id |
//   rights_issuer_url | u16 header count | (key, value)* |
//   iv (16 bytes) | u64 plaintext size | u32 payload size | payload
// where every string is u16-length-prefixed UTF-8.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"

namespace omadrm::dcf {

struct Headers {
  std::string content_type;       // e.g. "audio/mpeg"
  std::string content_id;         // e.g. "cid:track-42@content.example"
  std::string rights_issuer_url;  // where to acquire an RO
  std::vector<std::pair<std::string, std::string>> textual;

  bool operator==(const Headers&) const = default;
};

class Dcf {
 public:
  Dcf() = default;
  Dcf(Headers headers, Bytes iv, Bytes encrypted_payload,
      std::uint64_t plaintext_size);

  const Headers& headers() const { return headers_; }
  const Bytes& iv() const { return iv_; }
  const Bytes& encrypted_payload() const { return payload_; }
  std::uint64_t plaintext_size() const { return plaintext_size_; }

  /// Canonical serialized container.
  Bytes serialize() const;
  /// serialize()'s output size, computed without serializing.
  std::size_t serialized_size() const;
  static Dcf parse(ByteView data);

  /// SHA-1 over the serialized container — the value embedded in Rights
  /// Objects to bind license and content. Computed lazily on first call
  /// and cached (the container is immutable once constructed), so
  /// per-access integrity checks stop re-serializing multi-megabyte
  /// payloads. Not thread-safe, like the rest of the class.
  const Bytes& hash() const;

  bool operator==(const Dcf& other) const;

 private:
  Headers headers_;
  Bytes iv_;
  Bytes payload_;
  std::uint64_t plaintext_size_ = 0;
  mutable Bytes hash_cache_;  // empty until the first hash() call
};

/// Encrypts `plaintext` under `kcek` (16 bytes) and wraps it in a DCF.
Dcf make_dcf(Headers headers, ByteView plaintext, ByteView kcek, ByteView iv);

/// Decrypts the payload with `kcek`; validates the recorded plaintext size.
Bytes decrypt_dcf(const Dcf& dcf, ByteView kcek);

}  // namespace omadrm::dcf
