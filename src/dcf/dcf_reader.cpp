#include "dcf/dcf_reader.h"

#include <algorithm>

#include "common/error.h"

namespace omadrm::dcf {

using omadrm::Error;
using omadrm::ErrorKind;

namespace {

constexpr char kMagic[4] = {'O', 'D', 'C', 'F'};
constexpr std::uint8_t kVersion = 2;

// Cursor over the wire bytes handing out views instead of copies.
class ViewReader {
 public:
  explicit ViewReader(ByteView data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v =
        static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = load_be32(data_.data() + pos_);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = load_be64(data_.data() + pos_);
    pos_ += 8;
    return v;
  }
  std::string_view str() {
    std::uint16_t len = u16();
    need(len);
    std::string_view s(reinterpret_cast<const char*>(data_.data() + pos_),
                       len);
    pos_ += len;
    return s;
  }
  ByteView raw(std::size_t len) {
    need(len);
    ByteView v = data_.subspan(pos_, len);
    pos_ += len;
    return v;
  }
  bool at_end() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw Error(ErrorKind::kFormat, "dcf: truncated container");
    }
  }
  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace

DcfReader DcfReader::parse(ByteView wire) {
  ViewReader r(wire);
  ByteView magic = r.raw(4);
  if (!std::equal(magic.begin(), magic.end(), kMagic)) {
    throw Error(ErrorKind::kFormat, "dcf: bad magic");
  }
  if (r.u8() != kVersion) {
    throw Error(ErrorKind::kFormat, "dcf: unsupported version");
  }
  DcfReader out;
  out.wire_ = wire;
  out.content_type_ = r.str();
  out.content_id_ = r.str();
  out.rights_issuer_url_ = r.str();
  std::uint16_t n_headers = r.u16();
  out.textual_.reserve(n_headers);
  for (std::uint16_t i = 0; i < n_headers; ++i) {
    std::string_view k = r.str();
    std::string_view v = r.str();
    out.textual_.emplace_back(k, v);
  }
  out.iv_ = r.raw(16);
  out.plaintext_size_ = r.u64();
  std::uint32_t payload_len = r.u32();
  out.payload_ = r.raw(payload_len);
  if (!r.at_end()) {
    throw Error(ErrorKind::kFormat, "dcf: trailing bytes");
  }
  // One incremental pass over the very bytes just walked — the hash a
  // Rights Object binds to, with no serialize() round trip.
  crypto::Sha1 h;
  h.update(wire);
  h.finish_into(out.hash_);
  return out;
}

}  // namespace omadrm::dcf
