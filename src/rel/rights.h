// Rights Expression Language (REL) subset.
//
// OMA DRM 2 expresses licenses as XML <rights> documents listing, per
// protected asset, the granted permissions (play, display, execute, print,
// export) and their constraints (count, datetime window, interval from
// first use, accumulated metered time). This module models the documents
// (XML round-trip) and their runtime enforcement; the key material that
// accompanies them lives in the ROAP ProtectedRo structure, mirroring the
// standard's separation between rights and key transport.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "xml/xml.h"

namespace omadrm::rel {

enum class PermissionType : std::uint8_t {
  kPlay,
  kDisplay,
  kExecute,
  kPrint,
  kExport,
};

const char* to_string(PermissionType p);
std::optional<PermissionType> permission_from_string(std::string_view s);

/// Constraints attached to one permission. Absent optional = unconstrained
/// in that dimension.
///
/// Boundary semantics (audited and pinned by boundary-value tests in
/// tests/test_rel.cpp; see RightsEnforcer::check_and_consume):
///   not_before / not_after   inclusive instants — now == not_before and
///                            now == not_after both grant; the first
///                            kNotYetValid instant is not_before - 1 and
///                            the first kExpired instant not_after + 1.
///   interval_secs            window [first_use, first_use +
///                            interval_secs], inclusive at both ends.
///   accumulated_secs         a hard budget: a playback that would spend
///                            past it is denied, one that lands exactly
///                            on it grants.
struct Constraint {
  std::optional<std::uint32_t> count;             // total allowed uses
  std::optional<std::uint64_t> not_before;        // unix seconds
  std::optional<std::uint64_t> not_after;         // unix seconds
  std::optional<std::uint64_t> interval_secs;     // window from first use
  std::optional<std::uint64_t> accumulated_secs;  // total metered playtime

  bool is_unconstrained() const {
    return !count && !not_before && !not_after && !interval_secs &&
           !accumulated_secs;
  }

  xml::Element to_xml() const;
  /// Streams `<o-dd:constraint>` into `w` (wire path, allocation-free).
  void write(xml::Writer& w) const;
  static Constraint from_xml(const xml::Element& e);
  static Constraint from_node(const xml::Node& e);

  bool operator==(const Constraint&) const = default;
};

struct Permission {
  PermissionType type = PermissionType::kPlay;
  Constraint constraint;

  xml::Element to_xml() const;
  void write(xml::Writer& w) const;
  static Permission from_xml(const xml::Element& e);
  static Permission from_node(const xml::Node& e);

  bool operator==(const Permission&) const = default;
};

/// The <rights> document body: which content, which permissions, plus the
/// DCF hash that binds the license to the exact content bytes (the paper's
/// "hash value of the DCF is included in the Rights Object").
struct Rights {
  std::string ro_id;
  std::string content_id;
  Bytes dcf_hash;  // SHA-1 of the serialized DCF
  std::vector<Permission> permissions;

  const Permission* find(PermissionType type) const;

  xml::Element to_xml() const;
  /// Streams the `<o-ex:rights>` document into `w` — identical bytes to
  /// to_xml().serialize(), without building an Element tree.
  void write(xml::Writer& w) const;
  static Rights from_xml(const xml::Element& e);
  static Rights from_node(const xml::Node& e);
  std::string serialize() const;
  static Rights parse(const std::string& doc) {
    return from_xml(xml::parse(doc));
  }

  bool operator==(const Rights&) const = default;
};

/// Why an access attempt was granted or denied.
enum class Decision : std::uint8_t {
  kGranted,
  kNoSuchPermission,
  kCountExhausted,
  kNotYetValid,
  kExpired,
  kIntervalElapsed,
  kAccumulatedExhausted,
};

const char* to_string(Decision d);

/// Stateful constraint enforcement for one installed Rights Object.
///
/// The DRM Agent owns one enforcer per installed RO; each successful
/// check_and_consume() burns the stateful budgets (count, accumulated
/// time) and pins the interval anchor on first use.
class RightsEnforcer {
 public:
  explicit RightsEnforcer(Rights rights);

  const Rights& rights() const { return rights_; }

  /// Evaluates `type` at time `now`; `duration_secs` is the playback time
  /// charged against accumulated-time constraints. On kGranted the use is
  /// consumed; on any denial no state changes.
  Decision check_and_consume(PermissionType type, std::uint64_t now,
                             std::uint64_t duration_secs = 0);

  /// Uses left for a count-constrained permission (nullopt = unlimited).
  std::optional<std::uint32_t> remaining_count(PermissionType type) const;

  /// Per-permission consumption state, exposed so the DRM Agent can
  /// persist installed Rights Objects across restarts (the standard
  /// leaves storage to the CA's robustness rules; we model a secure
  /// serializable blob).
  struct State {
    std::uint32_t used = 0;
    std::optional<std::uint64_t> first_use;
    std::uint64_t accumulated = 0;

    bool operator==(const State&) const = default;
  };

  State state(PermissionType type) const {
    return state_[static_cast<std::size_t>(type)];
  }
  void restore_state(PermissionType type, const State& s) {
    state_[static_cast<std::size_t>(type)] = s;
  }

 private:
  Rights rights_;
  State state_[5];  // indexed by PermissionType
};

}  // namespace omadrm::rel
