#include "rel/rights.h"

#include "common/base64.h"
#include "common/error.h"

namespace omadrm::rel {

using omadrm::Error;
using omadrm::ErrorKind;

const char* to_string(PermissionType p) {
  switch (p) {
    case PermissionType::kPlay: return "play";
    case PermissionType::kDisplay: return "display";
    case PermissionType::kExecute: return "execute";
    case PermissionType::kPrint: return "print";
    case PermissionType::kExport: return "export";
  }
  return "?";
}

std::optional<PermissionType> permission_from_string(std::string_view s) {
  if (s == "play") return PermissionType::kPlay;
  if (s == "display") return PermissionType::kDisplay;
  if (s == "execute") return PermissionType::kExecute;
  if (s == "print") return PermissionType::kPrint;
  if (s == "export") return PermissionType::kExport;
  return std::nullopt;
}

const char* to_string(Decision d) {
  switch (d) {
    case Decision::kGranted: return "granted";
    case Decision::kNoSuchPermission: return "no-such-permission";
    case Decision::kCountExhausted: return "count-exhausted";
    case Decision::kNotYetValid: return "not-yet-valid";
    case Decision::kExpired: return "expired";
    case Decision::kIntervalElapsed: return "interval-elapsed";
    case Decision::kAccumulatedExhausted: return "accumulated-exhausted";
  }
  return "?";
}

namespace {

std::uint64_t parse_u64(std::string_view s) {
  // Strict decimal with overflow rejection: an attacker-sized budget
  // like 99999999999999999999999 must be refused, not silently wrapped
  // modulo 2^64 into a small one.
  std::optional<std::uint64_t> v = parse_u64_dec(s);
  if (!v) {
    throw Error(ErrorKind::kFormat,
                "rel: invalid or overflowing number '" + std::string(s) +
                    "'");
  }
  return *v;
}

// Field extraction is written once, generically, against the shared
// accessor surface of xml::Element (owning DOM) and xml::Node (zero-copy
// wire DOM); from_xml/from_node instantiate it for each.

template <typename E>
Constraint constraint_from(const E& e) {
  Constraint c;
  if (const auto* n = e.child("o-dd:count")) {
    std::uint64_t v = parse_u64(n->text());
    if (v > 0xffffffffull) {
      throw Error(ErrorKind::kFormat, "rel: count too large");
    }
    c.count = static_cast<std::uint32_t>(v);
  }
  if (const auto* dt = e.child("o-dd:datetime")) {
    if (const auto* s = dt->child("o-dd:start")) {
      c.not_before = parse_u64(s->text());
    }
    if (const auto* en = dt->child("o-dd:end")) {
      c.not_after = parse_u64(en->text());
    }
  }
  if (const auto* iv = e.child("o-dd:interval")) {
    c.interval_secs = parse_u64(iv->text());
  }
  if (const auto* ac = e.child("o-dd:accumulated")) {
    c.accumulated_secs = parse_u64(ac->text());
  }
  return c;
}

template <typename E>
Permission permission_from(const E& e) {
  std::string_view name = e.name();
  constexpr std::string_view kPrefix = "o-dd:";
  if (name.substr(0, kPrefix.size()) == kPrefix) {
    name = name.substr(kPrefix.size());
  }
  auto type = permission_from_string(name);
  if (!type) {
    throw Error(ErrorKind::kFormat,
                "rel: unknown permission '" + std::string(name) + "'");
  }
  Permission p;
  p.type = *type;
  if (const auto* c = e.child("o-dd:constraint")) {
    p.constraint = constraint_from(*c);
  }
  return p;
}

template <typename E>
Rights rights_from(const E& e) {
  if (e.name() != std::string_view("o-ex:rights")) {
    throw Error(ErrorKind::kFormat, "rel: root must be <o-ex:rights>");
  }
  Rights r;
  r.ro_id = e.require_attr("o-ex:id");
  const auto& agreement = e.require_child("o-ex:agreement");
  const auto& asset = agreement.require_child("o-ex:asset");
  r.content_id = asset.child_text("o-ex:context");
  r.dcf_hash = base64_decode(asset.child_text("ds:DigestValue"));
  const auto& perms = agreement.require_child("o-ex:permission");
  for (const auto& p : perms.children()) {
    r.permissions.push_back(permission_from(p));
  }
  return r;
}

}  // namespace

xml::Element Constraint::to_xml() const {
  xml::Element e("o-dd:constraint");
  if (count) e.add_text_child("o-dd:count", std::to_string(*count));
  if (not_before || not_after) {
    xml::Element dt("o-dd:datetime");
    if (not_before) dt.add_text_child("o-dd:start", std::to_string(*not_before));
    if (not_after) dt.add_text_child("o-dd:end", std::to_string(*not_after));
    e.add_child(std::move(dt));
  }
  if (interval_secs) {
    e.add_text_child("o-dd:interval", std::to_string(*interval_secs));
  }
  if (accumulated_secs) {
    e.add_text_child("o-dd:accumulated", std::to_string(*accumulated_secs));
  }
  return e;
}

void Constraint::write(xml::Writer& w) const {
  w.open("o-dd:constraint");
  if (count) w.u64_element("o-dd:count", *count);
  if (not_before || not_after) {
    w.open("o-dd:datetime");
    if (not_before) w.u64_element("o-dd:start", *not_before);
    if (not_after) w.u64_element("o-dd:end", *not_after);
    w.close();
  }
  if (interval_secs) w.u64_element("o-dd:interval", *interval_secs);
  if (accumulated_secs) w.u64_element("o-dd:accumulated", *accumulated_secs);
  w.close();
}

Constraint Constraint::from_xml(const xml::Element& e) {
  return constraint_from(e);
}

Constraint Constraint::from_node(const xml::Node& e) {
  return constraint_from(e);
}

xml::Element Permission::to_xml() const {
  xml::Element e(std::string("o-dd:") + to_string(type));
  if (!constraint.is_unconstrained()) {
    e.add_child(constraint.to_xml());
  }
  return e;
}

void Permission::write(xml::Writer& w) const {
  // Permission element names are "o-dd:" + the permission keyword; emit
  // the two pieces without building the concatenation.
  char name[16] = "o-dd:";
  const char* kind = to_string(type);
  std::size_t n = 5;
  for (const char* p = kind; *p && n + 1 < sizeof name; ++p) name[n++] = *p;
  w.open(std::string_view(name, n));
  if (!constraint.is_unconstrained()) {
    constraint.write(w);
  }
  w.close();
}

Permission Permission::from_xml(const xml::Element& e) {
  return permission_from(e);
}

Permission Permission::from_node(const xml::Node& e) {
  return permission_from(e);
}

const Permission* Rights::find(PermissionType type) const {
  for (const auto& p : permissions) {
    if (p.type == type) return &p;
  }
  return nullptr;
}

xml::Element Rights::to_xml() const {
  xml::Element root("o-ex:rights");
  root.set_attr("o-ex:id", ro_id);

  xml::Element& agreement = root.add_child(xml::Element("o-ex:agreement"));
  xml::Element& asset = agreement.add_child(xml::Element("o-ex:asset"));
  asset.add_text_child("o-ex:context", content_id);
  asset.add_text_child("ds:DigestValue", base64_encode(dcf_hash));

  xml::Element& perm_el = agreement.add_child(xml::Element("o-ex:permission"));
  for (const auto& p : permissions) {
    perm_el.add_child(p.to_xml());
  }
  return root;
}

void Rights::write(xml::Writer& w) const {
  w.open("o-ex:rights");
  w.attr("o-ex:id", ro_id);
  w.open("o-ex:agreement");
  w.open("o-ex:asset");
  w.text_element("o-ex:context", content_id);
  w.b64_element("ds:DigestValue", dcf_hash);
  w.close();  // o-ex:asset
  w.open("o-ex:permission");
  for (const auto& p : permissions) {
    p.write(w);
  }
  w.close();  // o-ex:permission
  w.close();  // o-ex:agreement
  w.close();  // o-ex:rights
}

std::string Rights::serialize() const {
  std::string out;
  xml::Writer w(out);
  write(w);
  return out;
}

Rights Rights::from_xml(const xml::Element& e) { return rights_from(e); }

Rights Rights::from_node(const xml::Node& e) { return rights_from(e); }

RightsEnforcer::RightsEnforcer(Rights rights) : rights_(std::move(rights)) {}

Decision RightsEnforcer::check_and_consume(PermissionType type,
                                           std::uint64_t now,
                                           std::uint64_t duration_secs) {
  const Permission* perm = rights_.find(type);
  if (!perm) return Decision::kNoSuchPermission;
  State& st = state_[static_cast<std::size_t>(type)];
  const Constraint& c = perm->constraint;

  // Datetime-window boundaries are inclusive on both ends, matching the
  // ODRL semantics OMA REL profiles (<o-dd:start>/<o-dd:end> name the
  // first and last valid instants): now == not_before and now ==
  // not_after both grant. The interval window is likewise inclusive at
  // its end: the access at exactly first_use + interval_secs still
  // grants, the next second does not. Pinned by the boundary-value tests
  // in tests/test_rel.cpp — change those deliberately or not at all.
  if (c.not_before && now < *c.not_before) return Decision::kNotYetValid;
  if (c.not_after && now > *c.not_after) return Decision::kExpired;
  // Compare as elapsed-vs-budget, not now-vs-(anchor + budget): a huge
  // <o-dd:interval> must behave as unlimited, not wrap modulo 2^64 into
  // an already-elapsed window.
  if (c.interval_secs && st.first_use && now > *st.first_use &&
      now - *st.first_use > *c.interval_secs) {
    return Decision::kIntervalElapsed;
  }
  if (c.count && st.used >= *c.count) return Decision::kCountExhausted;
  if (c.accumulated_secs) {
    // Subtractive form: spent + duration must not wrap past the budget
    // (a 2^64-scale duration_secs would otherwise overflow into a grant).
    const std::uint64_t budget = *c.accumulated_secs;
    if (st.accumulated > budget || duration_secs > budget - st.accumulated) {
      return Decision::kAccumulatedExhausted;
    }
  }

  // Grant: consume budgets.
  ++st.used;
  if (!st.first_use) st.first_use = now;
  st.accumulated += duration_secs;
  return Decision::kGranted;
}

std::optional<std::uint32_t> RightsEnforcer::remaining_count(
    PermissionType type) const {
  const Permission* perm = rights_.find(type);
  if (!perm || !perm->constraint.count) return std::nullopt;
  const State& st = state_[static_cast<std::size_t>(type)];
  std::uint32_t total = *perm->constraint.count;
  return st.used >= total ? 0 : total - st.used;
}

}  // namespace omadrm::rel
