#include "common/bytes.h"

#include "common/error.h"

namespace omadrm {

Bytes concat(std::initializer_list<ByteView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

Bytes slice(ByteView v, std::size_t offset, std::size_t len) {
  if (offset > v.size() || len > v.size() - offset) {
    throw Error(ErrorKind::kRange, "slice out of range");
  }
  return Bytes(v.begin() + static_cast<std::ptrdiff_t>(offset),
               v.begin() + static_cast<std::ptrdiff_t>(offset + len));
}

Bytes xor_bytes(ByteView a, ByteView b) {
  if (a.size() != b.size()) {
    throw Error(ErrorKind::kRange, "xor_bytes length mismatch");
  }
  Bytes out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(ByteView v) {
  return std::string(v.begin(), v.end());
}

bool ct_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

void store_be32(std::uint32_t v, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

void store_be64(std::uint64_t v, std::uint8_t* out) {
  store_be32(static_cast<std::uint32_t>(v >> 32), out);
  store_be32(static_cast<std::uint32_t>(v), out + 4);
}

std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t load_be64(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(load_be32(p)) << 32) | load_be32(p + 4);
}

void append_be32(Bytes& out, std::uint32_t v) {
  std::uint8_t buf[4];
  store_be32(v, buf);
  out.insert(out.end(), buf, buf + 4);
}

void append_be64(Bytes& out, std::uint64_t v) {
  std::uint8_t buf[8];
  store_be64(v, buf);
  out.insert(out.end(), buf, buf + 8);
}

std::optional<std::uint64_t> parse_u64_dec(std::string_view s) {
  if (s.empty()) return std::nullopt;
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (kMax - digit) / 10) return std::nullopt;
    v = v * 10 + digit;
  }
  return v;
}

bool ByteReader::take_u32(std::uint32_t& v) {
  if (remaining() < 4) return false;
  v = load_be32(data.data() + pos);
  pos += 4;
  return true;
}

bool ByteReader::take_u64(std::uint64_t& v) {
  if (remaining() < 8) return false;
  v = load_be64(data.data() + pos);
  pos += 8;
  return true;
}

bool ByteReader::take_bytes(std::size_t n, ByteView& v) {
  if (remaining() < n) return false;
  v = data.subspan(pos, n);
  pos += n;
  return true;
}

}  // namespace omadrm
