// Rank-carrying mutex wrappers + debug lock-order validator.
//
// PRs 7–9 gave the stack a real lock hierarchy, but it existed only as
// header prose and reviewer discipline; TSan can only catch an inversion
// a test happens to execute. These wrappers make the hierarchy a runtime
// invariant: every mutex carries a LockRank, and in checked builds
// (OMADRM_LOCK_ORDER_CHECKS, default-on for Debug) each acquisition is
// validated against a thread-local stack of held ranks. Acquiring
// out-of-order — or acquiring a second lock of the same rank, which the
// hierarchy forbids (shards are locked one at a time, stripes one at a
// time, conns one at a time) — aborts immediately with BOTH stack
// traces: where the held lock was taken and where the violating
// acquisition was attempted. A would-be deadlock becomes a deterministic
// crash on the FIRST bad interleaving, in whichever test reaches it,
// instead of a hang on the unlucky schedule.
//
// The measured lock order (rank strictly increases along every nesting
// chain in the codebase):
//
//   rank  name                 capability
//   ----  -------------------  ------------------------------------------
//    10   ri.shard             RightsIssuer::Shard::mu (16 device shards)
//    20   ri.domain_stripe     RightsIssuer::DomainStripe::mu (8 stripes)
//    30   ri.meta              RightsIssuer::meta_mu_ (session-id lease)
//    40   store.front          GroupCommitStore::mu_ (batch queue)
//    50   store.backing        MemoryStore::mu_ (terminal store mutex)
//    60   pki.chain_verdict    ChainVerifier::State::mu (shared)
//    70   bigint.mont_stripe   MontCache stripe mutexes (8 stripes)
//    80   common.rng           LockedRng::mu_
//   110   net.stop             RiServer::stop_mu_
//   120   net.conns            RiServer::conns_mu_
//   130   net.conn             RiServer::Conn::mu (per connection)
//   140   net.jobs             RiServer::jobs_mu_ (worker job queue)
//   150   net.replies          RiServer::replies_mu_
//   200   common.failpoint     failpoint registry (fires under store
//                              locks and under net.conn — must be last)
//
// Note the RI band pins meta BEFORE the store ranks: on_device_hello
// deliberately holds meta_mu_ across persist() so session-lease
// extensions reach the journal in lease order (ri/rights_issuer.cpp).
// ISSUE 10's prose table (store=3, meta=4) had this backwards — the
// first drift this validator flushed out was in the spec, not the code;
// tests/test_lock_order.cpp pins the corrected order.
//
// Server workers hold NO net.* lock while calling RightsIssuer::handle,
// so the net band (110–150) never nests into the RI band (10–80); both
// bands may precede common.failpoint (200).
//
// Release builds alias OrderedMutex to the unchecked variant: lock() is
// an inline forward to std::mutex::lock with zero added work, so the
// BENCH_* gates see no validator overhead. The checked variant is always
// *compiled* (tests/test_lock_order.cpp death-tests it in every build
// type); only the default alias changes.
#pragma once

#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace omadrm {

enum class LockRank : std::uint16_t {
  kRiShard = 10,
  kRiDomainStripe = 20,
  kRiMeta = 30,
  kStoreFront = 40,
  kStoreBacking = 50,
  kChainVerdict = 60,
  kMontStripe = 70,
  kRng = 80,
  kNetStop = 110,
  kNetConns = 120,
  kNetConn = 130,
  kNetJobs = 140,
  kNetReplies = 150,
  kFailpoint = 200,
};

namespace lockorder {

// Validates `rank` against this thread's held stack (strictly greater
// than every held rank, never equal) and pushes it with a captured
// backtrace. Aborts with both stacks on violation. `mtx` keys release.
void note_acquire(const void* mtx, std::uint16_t rank, const char* name);

// Pops `mtx` from this thread's held stack (any position: meta_mu_ is
// released mid-scope while later-acquired store locks come and go).
void note_release(const void* mtx);

// Aborts unless `mtx` is on this thread's held stack — the runtime half
// of OrderedMutex::assert_held().
void check_held(const void* mtx, const char* name);

}  // namespace lockorder

/// std::mutex carrying a LockRank. `kChecked` selects whether lock
/// operations consult the thread-local rank validator; both variants are
/// always compiled (the death test exercises the checked one regardless
/// of build type) and have identical layout.
template <bool kChecked>
class CAPABILITY("mutex") BasicOrderedMutex {
 public:
  BasicOrderedMutex(LockRank rank, const char* name) noexcept
      : rank_(static_cast<std::uint16_t>(rank)), name_(name) {}
  BasicOrderedMutex(const BasicOrderedMutex&) = delete;
  BasicOrderedMutex& operator=(const BasicOrderedMutex&) = delete;

  void lock() ACQUIRE() {
    // Validate BEFORE blocking: the point is to abort on the first bad
    // ordering instead of deadlocking on the unlucky schedule.
    if constexpr (kChecked) lockorder::note_acquire(this, rank_, name_);
    mu_.lock();
  }

  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    // A successful try_lock is still an ordering event; the hierarchy
    // has no sanctioned out-of-order try_lock, so hold it to rank too.
    if constexpr (kChecked) lockorder::note_acquire(this, rank_, name_);
    return true;
  }

  void unlock() RELEASE() {
    if constexpr (kChecked) lockorder::note_release(this);
    mu_.unlock();
  }

  /// Runtime-checked TSA escape hatch: asserts (in checked builds) that
  /// the calling thread holds this mutex, and tells the static analysis
  /// to assume so. Used at the top of lambdas invoked through
  /// type-erased seams the analysis cannot follow.
  void assert_held() const ASSERT_CAPABILITY(this) {
    if constexpr (kChecked) lockorder::check_held(this, name_);
  }

 private:
  std::mutex mu_;
  const std::uint16_t rank_;
  const char* const name_;
};

/// std::shared_mutex carrying a LockRank. Shared acquisitions obey the
/// same rank discipline as exclusive ones — a reader nested under a
/// lower-ranked lock is fine, a reader taken over a higher-ranked one is
/// the same inversion hazard.
template <bool kChecked>
class CAPABILITY("shared_mutex") BasicOrderedSharedMutex {
 public:
  BasicOrderedSharedMutex(LockRank rank, const char* name) noexcept
      : rank_(static_cast<std::uint16_t>(rank)), name_(name) {}
  BasicOrderedSharedMutex(const BasicOrderedSharedMutex&) = delete;
  BasicOrderedSharedMutex& operator=(const BasicOrderedSharedMutex&) = delete;

  void lock() ACQUIRE() {
    if constexpr (kChecked) lockorder::note_acquire(this, rank_, name_);
    mu_.lock();
  }
  void unlock() RELEASE() {
    if constexpr (kChecked) lockorder::note_release(this);
    mu_.unlock();
  }
  void lock_shared() ACQUIRE_SHARED() {
    if constexpr (kChecked) lockorder::note_acquire(this, rank_, name_);
    mu_.lock_shared();
  }
  void unlock_shared() RELEASE_SHARED() {
    if constexpr (kChecked) lockorder::note_release(this);
    mu_.unlock_shared();
  }

 private:
  std::shared_mutex mu_;
  const std::uint16_t rank_;
  const char* const name_;
};

/// std::lock_guard equivalent over BasicOrderedMutex, annotated so the
/// static analysis sees the acquisition (std::lock_guard itself is
/// opaque to TSA). The adopting form takes over release of an
/// already-held mutex — the serve() fast path try_locks first to count
/// contention, then adopts.
template <bool kChecked>
class SCOPED_CAPABILITY BasicMutexLock {
 public:
  explicit BasicMutexLock(BasicOrderedMutex<kChecked>& mu) ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock();
  }
  BasicMutexLock(BasicOrderedMutex<kChecked>& mu, std::adopt_lock_t)
      REQUIRES(mu)
      : mu_(mu) {}
  ~BasicMutexLock() RELEASE() { mu_.unlock(); }
  BasicMutexLock(const BasicMutexLock&) = delete;
  BasicMutexLock& operator=(const BasicMutexLock&) = delete;

 private:
  BasicOrderedMutex<kChecked>& mu_;
};

/// std::unique_lock equivalent: supports mid-scope unlock/relock (the
/// meta-lease fast path, the group-commit leader) and satisfies
/// BasicLockable for std::condition_variable_any.
template <bool kChecked>
class SCOPED_CAPABILITY BasicUniqueLock {
 public:
  explicit BasicUniqueLock(BasicOrderedMutex<kChecked>& mu) ACQUIRE(mu)
      : mu_(mu), owns_(true) {
    mu_.lock();
  }
  ~BasicUniqueLock() RELEASE() {
    if (owns_) mu_.unlock();
  }
  BasicUniqueLock(const BasicUniqueLock&) = delete;
  BasicUniqueLock& operator=(const BasicUniqueLock&) = delete;

  void lock() ACQUIRE() {
    mu_.lock();
    owns_ = true;
  }
  void unlock() RELEASE() {
    owns_ = false;
    mu_.unlock();
  }
  bool owns_lock() const { return owns_; }

 private:
  BasicOrderedMutex<kChecked>& mu_;
  bool owns_;
};

/// Shared (reader) RAII guard over BasicOrderedSharedMutex.
template <bool kChecked>
class SCOPED_CAPABILITY BasicReaderLock {
 public:
  explicit BasicReaderLock(BasicOrderedSharedMutex<kChecked>& mu)
      ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~BasicReaderLock() RELEASE_GENERIC() { mu_.unlock_shared(); }
  BasicReaderLock(const BasicReaderLock&) = delete;
  BasicReaderLock& operator=(const BasicReaderLock&) = delete;

 private:
  BasicOrderedSharedMutex<kChecked>& mu_;
};

/// Exclusive (writer) RAII guard over BasicOrderedSharedMutex.
template <bool kChecked>
class SCOPED_CAPABILITY BasicWriterLock {
 public:
  explicit BasicWriterLock(BasicOrderedSharedMutex<kChecked>& mu) ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock();
  }
  ~BasicWriterLock() RELEASE_GENERIC() { mu_.unlock(); }
  BasicWriterLock(const BasicWriterLock&) = delete;
  BasicWriterLock& operator=(const BasicWriterLock&) = delete;

 private:
  BasicOrderedSharedMutex<kChecked>& mu_;
};

// Build-wide alias selection. CMake defines OMADRM_LOCK_ORDER_CHECKS for
// Debug builds (and any -DOMADRM_LOCK_ORDER_CHECKS=ON configure); it is
// applied tree-wide so every TU in one build agrees on the alias.
#if defined(OMADRM_LOCK_ORDER_CHECKS)
inline constexpr bool kLockOrderChecked = true;
#else
inline constexpr bool kLockOrderChecked = false;
#endif

using OrderedMutex = BasicOrderedMutex<kLockOrderChecked>;
using OrderedSharedMutex = BasicOrderedSharedMutex<kLockOrderChecked>;
using MutexLock = BasicMutexLock<kLockOrderChecked>;
using UniqueLock = BasicUniqueLock<kLockOrderChecked>;
using ReaderLock = BasicReaderLock<kLockOrderChecked>;
using WriterLock = BasicWriterLock<kLockOrderChecked>;

// The always-checked types, for the validator's own death tests.
using CheckedOrderedMutex = BasicOrderedMutex<true>;
using CheckedMutexLock = BasicMutexLock<true>;

}  // namespace omadrm
