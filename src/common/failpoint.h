// Deterministic failpoint registry: named fault-injection sites.
//
// A failpoint is a *named place* in production code where a test,
// harness, or operator can deterministically inject a failure without
// recompiling. The production fast path is one relaxed atomic load
// (nothing armed anywhere -> zero-cost); an armed site evaluates its
// mode under a mutex and tells the caller what to do:
//
//   kProceed   nothing injected; run the real operation
//   kError     simulate the operation failing with Action::err (an errno
//              value: EIO, ENOSPC, ...) — the site must NOT perform the
//              real operation
//   kCrash     die here, mid-operation. The site performs whatever
//              partial effect models its crash window (e.g. writing half
//              a journal frame) and then calls crash_now(), which
//              _exit()s with kCrashExitCode — no atexit handlers, no
//              buffered-IO flush, the closest a process gets to pulling
//              its own plug.
//
// Arming — programmatic, CLI, or environment:
//
//   failpoint::arm("store.journal.write", "error-once:ENOSPC");
//   ri_server --failpoint store.journal.fsync=crash
//   OMADRM_FAILPOINTS="store.journal.write=error-every-3:EIO" ./binary
//
// The environment spec is parsed at static-init time in every binary
// linking this library, which is what lets the crash-recovery matrix
// arm a crash inside a forked+exec'd ri_server without new plumbing.
//
// Spec grammar (per site):   <mode>[:<errno-name>]
//
//   error-once        fail the next hit, then disarm
//   error-every-N     fail every Nth hit (N >= 1)
//   nth-hit-N         fail exactly the Nth hit after arming, then disarm
//   crash             crash at the next hit
//   crash-N           crash at the Nth hit after arming
//   off               disarm the site (hit counting continues)
//
// The errno suffix (EIO default) applies to the error modes: EIO,
// ENOSPC, EINTR, EINVAL, EPIPE, ECONNRESET, EAGAIN are understood.
//
// Hit counters count every fire() of a site while *any* site is armed
// (the registry is dormant otherwise), so a harness can assert that a
// workload actually reached the site it armed.
//
// The compiled-in site catalog lives in failpoint.cpp next to each
// subsystem's wiring; catalog() enumerates it so coverage harnesses
// (tests/test_crash_matrix.cpp) iterate registered sites instead of
// hand-maintaining a list that drifts from the code.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace omadrm::failpoint {

/// Exit status of a crash-mode failpoint (distinct from every exit code
/// the repo's binaries use, so a harness can tell "died at the armed
/// site" from "died some other way").
inline constexpr int kCrashExitCode = 86;

enum class Op : std::uint8_t {
  kProceed,  // nothing injected
  kError,    // simulate failure with Action::err (an errno value)
  kCrash,    // perform the site's partial effect, then crash_now()
};

struct Action {
  Op op = Op::kProceed;
  int err = 0;  // errno to simulate when op == kError
};

/// One site, described for catalogs and docs.
struct SiteInfo {
  const char* name;
  const char* description;
};

/// Evaluates the site. Cost when nothing is armed anywhere: one relaxed
/// atomic load. Thread-safe.
Action fire(const char* site);

/// fire() + default handling: crashes on kCrash, returns the errno to
/// simulate on kError, 0 to proceed. For sites with no interesting
/// partial-effect crash window.
int check(const char* site);

/// _exit(kCrashExitCode) — the crash-mode terminator. Never returns.
[[noreturn]] void crash_now();

/// Arms one site from a spec ("error-once:ENOSPC", "crash-2", ...).
/// Throws omadrm::Error(kFormat) on an unparseable spec. Unknown site
/// names are accepted (arming is decoupled from the catalog).
void arm(std::string_view site, std::string_view spec);

/// Arms a semicolon/comma-separated list of "<site>=<spec>" pairs — the
/// CLI / OMADRM_FAILPOINTS form. Throws omadrm::Error(kFormat) on a
/// malformed entry.
void arm_from_spec(std::string_view multi_spec);

/// Disarms every site and zeroes every hit counter.
void reset_all();

/// Hits observed at `site` since the registry last became active.
std::uint64_t hits(std::string_view site);

/// The compiled-in site catalog (stable order).
const std::vector<SiteInfo>& catalog();

}  // namespace omadrm::failpoint
