// RFC 4648 base64 (standard alphabet, '=' padding).
//
// Used for embedding binary material (wrapped keys, signatures, hashes)
// inside XML documents, as the OMA DRM 2 schemas do.
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.h"

namespace omadrm {

/// Encodes bytes to base64 with padding.
std::string base64_encode(ByteView data);

/// Decodes base64; accepts only canonical input (correct padding, no
/// whitespace). Throws omadrm::Error(kFormat) on invalid input.
Bytes base64_decode(std::string_view text);

}  // namespace omadrm
