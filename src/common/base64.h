// RFC 4648 base64 (standard alphabet, '=' padding).
//
// Used for embedding binary material (wrapped keys, signatures, hashes)
// inside XML documents, as the OMA DRM 2 schemas do. Because base64 text
// dominates ROAP document bytes (certificates, OCSP responses, wrapped
// keys), both directions are written for the wire hot path: the _into
// variants append to caller-owned buffers (no temporaries, exact
// reservation) and run word-at-a-time — one 24-bit group per step with a
// single combined validity check on decode.
//
// Decoding is strict: only canonical input is accepted. Whitespace or
// any other non-alphabet byte, a length not divisible by four, padding
// anywhere but the final one or two positions, and non-zero trailing
// bits under the padding (e.g. "QR==" where only "QQ==" encodes that
// byte) all throw omadrm::Error(kFormat).
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.h"

namespace omadrm {

/// Appends the base64 encoding of `data` (with padding) to `out`.
void base64_encode_into(ByteView data, std::string& out);

/// Encodes bytes to base64 with padding.
std::string base64_encode(ByteView data);

/// Appends the decoded bytes to `out`. Throws omadrm::Error(kFormat) on
/// any non-canonical input (see file comment).
void base64_decode_into(std::string_view text, Bytes& out);

/// Decodes base64; accepts only canonical input.
Bytes base64_decode(std::string_view text);

}  // namespace omadrm
