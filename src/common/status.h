// Unified outcome codes for the whole protocol stack.
//
// Historically the DRM Agent reported `agent::AgentStatus` while ROAP
// messages carried `roap::Status`; every caller had to juggle both raw
// enums. `StatusCode` merges them into one code space used by
// `omadrm::Result<T>` (common/result.h): agent-local preconditions,
// peer-reported protocol statuses, verification failures, and the
// transport-boundary failures introduced by the serialized wire seam.
#pragma once

#include <cstdint>
#include <ostream>

namespace omadrm {

enum class StatusCode : std::uint8_t {
  kOk,

  // -- agent-local preconditions ------------------------------------------
  kNotProvisioned,       // no device certificate installed yet
  kNoRiContext,          // interaction attempted before registration
  kRiContextExpired,     // RI certificate no longer valid

  // -- peer-reported ROAP statuses (mirrors roap::Status) -----------------
  kRiAborted,            // peer answered with a generic Abort
  kNotRegistered,        // peer does not know this device
  kUnknownRoId,          // no such license on offer
  kAccessDenied,         // e.g. not a member of the requested domain

  // -- verification failures ----------------------------------------------
  kNonceMismatch,        // response not bound to our request
  kSignatureInvalid,     // a ROAP message signature failed
  kCertificateInvalid,   // certificate failed validation
  kOcspInvalid,          // stapled OCSP response failed validation
  kCertificateRevoked,   // OCSP reports the certificate revoked
  kUnwrapFailed,         // AES-UNWRAP integrity failure (wrong key / tamper)
  kMacMismatch,          // Rights Object MAC check failed
  kRoSignatureInvalid,   // RO signature missing/invalid (domain ROs)

  // -- agent-local state ---------------------------------------------------
  kNoDomainKey,          // domain RO but device has no K_D
  kNotInstalled,         // no installed RO for the content
  kDcfHashMismatch,      // DCF integrity check failed
  kPermissionDenied,     // REL constraint evaluation denied the access

  // -- transport boundary --------------------------------------------------
  kTransportFailure,     // envelope lost in transit / peer unreachable
  kMalformedMessage,     // reply did not parse as a ROAP document
  kUnexpectedMessage,    // parsed, but not the message the session awaits
  kServerBusy,           // peer shed the request under overload (admission
                         // control); retriable with backoff — the request
                         // was never processed, so a resend is always safe

  // -- retry / recovery ----------------------------------------------------
  // Outcomes of the fault-tolerant session driver (roap/retry.h): a pass
  // that keeps failing retriably eventually terminates with one of these
  // instead of leaking the last transient code as if it were final.
  kTimeout,              // retry deadline exceeded before the pass finished
  kRetriesExhausted,     // attempt budget spent; context carries the count
  kSessionExpired,       // RI garbage-collected the pending handshake (TTL);
                         // recovery = restart from DeviceHello, fresh nonces

  // -- secure storage -------------------------------------------------------
  // The durable-store codes are deliberately distinct so corruption
  // classes are diagnosable: a truncated image, a record whose seal (MAC)
  // fails, and a replayed stale snapshot each fail closed differently.
  kStoreFailure,         // backend I/O failure; durability not guaranteed
  kStoreCorrupt,         // structurally invalid / truncated store image
  kStoreSealBroken,      // a sealed record failed its HMAC (tamper / wrong key)
  kStoreRollback,        // generation regression: stale state replayed
};

inline const char* to_string(StatusCode s) {
  switch (s) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kNotProvisioned: return "not-provisioned";
    case StatusCode::kNoRiContext: return "no-ri-context";
    case StatusCode::kRiContextExpired: return "ri-context-expired";
    case StatusCode::kRiAborted: return "ri-aborted";
    case StatusCode::kNotRegistered: return "not-registered";
    case StatusCode::kUnknownRoId: return "unknown-ro-id";
    case StatusCode::kAccessDenied: return "access-denied";
    case StatusCode::kNonceMismatch: return "nonce-mismatch";
    case StatusCode::kSignatureInvalid: return "signature-invalid";
    case StatusCode::kCertificateInvalid: return "certificate-invalid";
    case StatusCode::kOcspInvalid: return "ocsp-invalid";
    case StatusCode::kCertificateRevoked: return "certificate-revoked";
    case StatusCode::kUnwrapFailed: return "unwrap-failed";
    case StatusCode::kMacMismatch: return "mac-mismatch";
    case StatusCode::kRoSignatureInvalid: return "ro-signature-invalid";
    case StatusCode::kNoDomainKey: return "no-domain-key";
    case StatusCode::kNotInstalled: return "not-installed";
    case StatusCode::kDcfHashMismatch: return "dcf-hash-mismatch";
    case StatusCode::kPermissionDenied: return "permission-denied";
    case StatusCode::kTransportFailure: return "transport-failure";
    case StatusCode::kMalformedMessage: return "malformed-message";
    case StatusCode::kUnexpectedMessage: return "unexpected-message";
    case StatusCode::kServerBusy: return "server-busy";
    case StatusCode::kTimeout: return "timeout";
    case StatusCode::kRetriesExhausted: return "retries-exhausted";
    case StatusCode::kSessionExpired: return "session-expired";
    case StatusCode::kStoreFailure: return "store-failure";
    case StatusCode::kStoreCorrupt: return "store-corrupt";
    case StatusCode::kStoreSealBroken: return "store-seal-broken";
    case StatusCode::kStoreRollback: return "store-rollback";
  }
  return "?";
}

inline std::ostream& operator<<(std::ostream& os, StatusCode s) {
  return os << to_string(s);
}

}  // namespace omadrm
