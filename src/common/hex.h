// Lowercase hexadecimal encoding / decoding.
#pragma once

#include <string>
#include <string_view>

#include "common/bytes.h"

namespace omadrm {

/// Encodes bytes as lowercase hex ("deadbeef").
std::string to_hex(ByteView data);

/// Decodes a hex string (case-insensitive, even length, no separators).
/// Throws omadrm::Error(kFormat) on invalid input.
Bytes from_hex(std::string_view hex);

}  // namespace omadrm
