#include "common/base64.h"

#include <array>
#include <cstdint>

#include "common/error.h"

namespace omadrm {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::array<std::int8_t, 256> make_reverse_table() {
  std::array<std::int8_t, 256> table{};
  for (auto& v : table) v = -1;
  for (int i = 0; i < 64; ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] =
        static_cast<std::int8_t>(i);
  }
  return table;
}

constexpr std::array<std::int8_t, 256> kReverse = make_reverse_table();

[[noreturn]] void reject(const char* why) {
  throw Error(ErrorKind::kFormat, std::string("base64 ") + why);
}

// Appends the strict decode of `text` (validated, canonical-only) to
// `out`. Called with length already checked to be a positive multiple
// of 4; throws mid-append on invalid input (the caller rolls back).
void decode_append(std::string_view text, Bytes& out) {
  const std::size_t old = out.size();
  out.resize(old + text.size() / 4 * 3);
  std::uint8_t* o = out.data() + old;
  const char* p = text.data();

  // All groups but the last carry no padding: decode word-at-a-time with
  // one combined validity check per 24-bit group.
  const std::size_t full = text.size() / 4 - 1;
  for (std::size_t g = 0; g < full; ++g, p += 4, o += 3) {
    const std::int32_t v0 = kReverse[static_cast<unsigned char>(p[0])];
    const std::int32_t v1 = kReverse[static_cast<unsigned char>(p[1])];
    const std::int32_t v2 = kReverse[static_cast<unsigned char>(p[2])];
    const std::int32_t v3 = kReverse[static_cast<unsigned char>(p[3])];
    if ((v0 | v1 | v2 | v3) < 0) {
      // '=' here is padding before the final group; anything else is an
      // invalid byte (whitespace included — it is never skipped).
      for (int j = 0; j < 4; ++j) {
        if (p[j] == '=') reject("padding before the final group");
      }
      reject("invalid character");
    }
    const std::uint32_t n =
        (static_cast<std::uint32_t>(v0) << 18) |
        (static_cast<std::uint32_t>(v1) << 12) |
        (static_cast<std::uint32_t>(v2) << 6) | static_cast<std::uint32_t>(v3);
    o[0] = static_cast<std::uint8_t>(n >> 16);
    o[1] = static_cast<std::uint8_t>(n >> 8);
    o[2] = static_cast<std::uint8_t>(n);
  }

  // Final group: 0, 1, or 2 trailing '=' allowed, and the bits beneath
  // the padding must be zero (canonical encoding only).
  int pad = 0;
  if (p[3] == '=') {
    ++pad;
    if (p[2] == '=') ++pad;
  }
  if (p[0] == '=' || p[1] == '=' || (pad < 2 && p[2] == '=')) {
    reject("misplaced padding");
  }
  std::uint32_t n = 0;
  for (int j = 0; j < 4 - pad; ++j) {
    const std::int32_t v = kReverse[static_cast<unsigned char>(p[j])];
    if (v < 0) reject("invalid character");
    n |= static_cast<std::uint32_t>(v) << (18 - 6 * j);
  }
  if (pad == 2 && (n & 0xffff) != 0) reject("non-canonical trailing bits");
  if (pad == 1 && (n & 0xff) != 0) reject("non-canonical trailing bits");
  o[0] = static_cast<std::uint8_t>(n >> 16);
  if (pad < 2) o[1] = static_cast<std::uint8_t>(n >> 8);
  if (pad < 1) o[2] = static_cast<std::uint8_t>(n);
  out.resize(out.size() - static_cast<std::size_t>(pad));
}

}  // namespace

void base64_encode_into(ByteView data, std::string& out) {
  const std::size_t groups = data.size() / 3;
  const std::size_t rem = data.size() - groups * 3;
  const std::size_t old = out.size();
  out.resize(old + (data.size() + 2) / 3 * 4);
  char* o = out.data() + old;
  const std::uint8_t* p = data.data();
  for (std::size_t g = 0; g < groups; ++g, p += 3, o += 4) {
    const std::uint32_t n = (static_cast<std::uint32_t>(p[0]) << 16) |
                            (static_cast<std::uint32_t>(p[1]) << 8) | p[2];
    o[0] = kAlphabet[(n >> 18) & 63];
    o[1] = kAlphabet[(n >> 12) & 63];
    o[2] = kAlphabet[(n >> 6) & 63];
    o[3] = kAlphabet[n & 63];
  }
  if (rem == 1) {
    const std::uint32_t n = static_cast<std::uint32_t>(p[0]) << 16;
    o[0] = kAlphabet[(n >> 18) & 63];
    o[1] = kAlphabet[(n >> 12) & 63];
    o[2] = '=';
    o[3] = '=';
  } else if (rem == 2) {
    const std::uint32_t n = (static_cast<std::uint32_t>(p[0]) << 16) |
                            (static_cast<std::uint32_t>(p[1]) << 8);
    o[0] = kAlphabet[(n >> 18) & 63];
    o[1] = kAlphabet[(n >> 12) & 63];
    o[2] = kAlphabet[(n >> 6) & 63];
    o[3] = '=';
  }
}

std::string base64_encode(ByteView data) {
  std::string out;
  base64_encode_into(data, out);
  return out;
}

void base64_decode_into(std::string_view text, Bytes& out) {
  if (text.size() % 4 != 0) reject("length not a multiple of 4");
  if (text.empty()) return;

  // On rejection the output must be exactly as the caller passed it —
  // no partially decoded tail.
  const std::size_t old = out.size();
  try {
    decode_append(text, out);
  } catch (...) {
    out.resize(old);
    throw;
  }
}


Bytes base64_decode(std::string_view text) {
  Bytes out;
  base64_decode_into(text, out);
  return out;
}

}  // namespace omadrm
