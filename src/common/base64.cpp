#include "common/base64.h"

#include <array>

#include "common/error.h"

namespace omadrm {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<int, 256> make_reverse_table() {
  std::array<int, 256> table{};
  table.fill(-1);
  for (int i = 0; i < 64; ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] = i;
  }
  return table;
}

}  // namespace

std::string base64_encode(ByteView data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                      (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                      data[i + 2];
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back(kAlphabet[n & 63]);
  }
  std::size_t rem = data.size() - i;
  if (rem == 1) {
    std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                      (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

Bytes base64_decode(std::string_view text) {
  static const std::array<int, 256> kReverse = make_reverse_table();
  if (text.size() % 4 != 0) {
    throw Error(ErrorKind::kFormat, "base64 length not a multiple of 4");
  }
  Bytes out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int pad = 0;
    std::uint32_t n = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      char c = text[i + j];
      if (c == '=') {
        // Padding is only legal in the last two positions of the final group.
        if (i + 4 != text.size() || j < 2) {
          throw Error(ErrorKind::kFormat, "base64 misplaced padding");
        }
        ++pad;
        n <<= 6;
        continue;
      }
      if (pad > 0) {
        throw Error(ErrorKind::kFormat, "base64 data after padding");
      }
      int v = kReverse[static_cast<unsigned char>(c)];
      if (v < 0) {
        throw Error(ErrorKind::kFormat, "base64 invalid character");
      }
      n = (n << 6) | static_cast<std::uint32_t>(v);
    }
    out.push_back(static_cast<std::uint8_t>((n >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>((n >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(n & 0xff));
  }
  return out;
}

}  // namespace omadrm
