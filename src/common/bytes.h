// Byte-buffer primitives shared by every layer of the stack.
//
// The whole library works on `Bytes` (a std::vector<uint8_t>) for owned
// buffers and `ByteView` (std::span<const uint8_t>) for borrowed ones.
// Helper functions here are deliberately small and allocation-explicit so
// higher layers can reason about copies.
#pragma once

#include <cstdint>
#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace omadrm {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Concatenates any number of byte views into a freshly allocated buffer.
Bytes concat(std::initializer_list<ByteView> parts);

/// Returns bytes [offset, offset+len) of `v`. Throws omadrm::Error on
/// out-of-range access (never silently truncates).
Bytes slice(ByteView v, std::size_t offset, std::size_t len);

/// XORs `b` into `a` element-wise; the views must have equal length.
Bytes xor_bytes(ByteView a, ByteView b);

/// Interprets a string's characters as bytes (no encoding conversion).
Bytes to_bytes(std::string_view s);

/// Interprets a byte buffer as a std::string (no validation).
std::string to_string(ByteView v);

/// Constant-time equality: runtime depends only on the lengths, not the
/// contents. Use for MAC / hash / key comparisons.
bool ct_equal(ByteView a, ByteView b);

/// Big-endian store of a 32/64-bit integer into 4/8 bytes.
void store_be32(std::uint32_t v, std::uint8_t* out);
void store_be64(std::uint64_t v, std::uint8_t* out);

/// Big-endian load of 4/8 bytes.
std::uint32_t load_be32(const std::uint8_t* p);
std::uint64_t load_be64(const std::uint8_t* p);

/// Appends the big-endian encoding of a 32/64-bit integer to `out`.
void append_be32(Bytes& out, std::uint32_t v);
void append_be64(Bytes& out, std::uint64_t v);

/// Strict base-10 uint64 parse: nullopt on empty input, any non-digit,
/// or overflow past 2^64-1 (an attacker-sized number must be rejected,
/// never silently wrapped into a small one).
std::optional<std::uint64_t> parse_u64_dec(std::string_view s);

/// Bounds-checked forward reader over untrusted serialized bytes: each
/// take_* returns false (cursor unmoved) instead of reading past the
/// end, so truncation surfaces as a typed failure, never UB.
struct ByteReader {
  ByteView data;
  std::size_t pos = 0;

  std::size_t remaining() const { return data.size() - pos; }
  bool take_u32(std::uint32_t& v);
  bool take_u64(std::uint64_t& v);
  bool take_bytes(std::size_t n, ByteView& v);
};

}  // namespace omadrm
