// Deterministic random source.
//
// Everything random in the stack — RSA key generation, nonces, symmetric
// keys, synthetic content — flows through this interface so that every
// test, example, and benchmark run is reproducible bit-for-bit from a seed
// (mirroring the paper's deterministic Java PC model).
//
// The default implementation is xoshiro256** seeded via splitmix64. That is
// a *simulation* RNG: statistically excellent and fully deterministic, but
// not a CSPRNG — which is exactly what a reproducibility-first model wants.
// A production port would swap in a hardware TRNG behind the same interface.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/ordered_mutex.h"
#include "common/thread_annotations.h"

namespace omadrm {

/// Abstract random source; all consumers take `Rng&`.
class Rng {
 public:
  virtual ~Rng() = default;

  /// Fills `out` with random bytes.
  virtual void fill(std::uint8_t* out, std::size_t len) = 0;

  /// Convenience: returns `len` random bytes.
  Bytes bytes(std::size_t len);

  /// Uniform draw in [0, bound). `bound` must be non-zero.
  std::uint64_t uniform(std::uint64_t bound);

  /// Raw 64-bit draw.
  virtual std::uint64_t next_u64() = 0;
};

/// xoshiro256** — deterministic, seedable, fast.
class DeterministicRng final : public Rng {
 public:
  explicit DeterministicRng(std::uint64_t seed);

  void fill(std::uint8_t* out, std::size_t len) override;
  std::uint64_t next_u64() override;

 private:
  std::uint64_t state_[4];
};

/// Mutex-serialized view over another Rng. The draw *sequence* stays that
/// of the wrapped generator — single-threaded callers see identical
/// output — but concurrent callers interleave safely instead of racing
/// the generator state. Which caller gets which draw is then scheduling-
/// dependent, so wrap only generators whose consumers tolerate divergence
/// (e.g. the RI's nonce/key draws after net::Realm's shared trust
/// prefix). The wrapped generator must outlive the wrapper.
class LockedRng final : public Rng {
 public:
  explicit LockedRng(Rng& inner) : inner_(inner) {}

  void fill(std::uint8_t* out, std::size_t len) override {
    MutexLock lock(mu_);
    inner_.fill(out, len);
  }
  std::uint64_t next_u64() override {
    MutexLock lock(mu_);
    return inner_.next_u64();
  }

 private:
  // Rank kRng: drawn with a shard / stripe / meta lock held (nonce and
  // key generation inside handlers), never the other way around.
  OrderedMutex mu_{LockRank::kRng, "common.rng"};
  Rng& inner_ GUARDED_BY(mu_);
};

}  // namespace omadrm
