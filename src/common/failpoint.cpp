#include "common/failpoint.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/error.h"
#include "common/ordered_mutex.h"
#include "common/thread_annotations.h"

namespace omadrm::failpoint {

namespace {

enum class Mode : std::uint8_t {
  kOff,
  kErrorOnce,   // fail the 1st fire after arming, then disarm
  kErrorEvery,  // fail every Nth fire after arming
  kNthHit,      // fail exactly the Nth fire after arming, then disarm
  kCrashAt,     // crash at the Nth fire after arming
};

struct SiteState {
  Mode mode = Mode::kOff;
  std::uint64_t n = 1;          // mode parameter
  int err = EIO;                // errno for the error modes
  std::uint64_t hits = 0;       // fires observed while the registry is active
  std::uint64_t since_arm = 0;  // fires since the last arm()
};

// Number of sites whose mode != kOff. The fire() fast path — the only
// thing production traffic ever pays — is one relaxed load of this.
std::atomic<std::size_t> g_armed{0};

// Rank kFailpoint: sites fire under store locks (journal append paths)
// and under a connection lock (net.server.send), so the registry lock
// must outrank everything else in the tree. Function-local static keeps
// the EnvArm static-init ordering safe.
struct Registry {
  OrderedMutex mu{LockRank::kFailpoint, "common.failpoint"};
  std::map<std::string, SiteState, std::less<>> sites GUARDED_BY(mu);
};

Registry& registry() {
  static Registry r;
  return r;
}

void disarm_locked(SiteState& s) {
  if (s.mode != Mode::kOff) {
    s.mode = Mode::kOff;
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

int errno_from_name(std::string_view name) {
  if (name == "EIO") return EIO;
  if (name == "ENOSPC") return ENOSPC;
  if (name == "EINTR") return EINTR;
  if (name == "EINVAL") return EINVAL;
  if (name == "EPIPE") return EPIPE;
  if (name == "ECONNRESET") return ECONNRESET;
  if (name == "EAGAIN") return EAGAIN;
  // Plain decimal is accepted for anything exotic.
  int v = 0;
  for (char c : name) {
    if (c < '0' || c > '9') {
      throw Error(ErrorKind::kFormat,
                  "failpoint: unknown errno name '" + std::string(name) + "'");
    }
    v = v * 10 + (c - '0');
  }
  if (v == 0) {
    throw Error(ErrorKind::kFormat, "failpoint: empty errno suffix");
  }
  return v;
}

std::uint64_t count_suffix(std::string_view spec, std::string_view prefix) {
  std::string_view digits = spec.substr(prefix.size());
  if (digits.empty()) {
    throw Error(ErrorKind::kFormat,
                "failpoint: '" + std::string(spec) + "' needs a count");
  }
  std::uint64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      throw Error(ErrorKind::kFormat,
                  "failpoint: bad count in '" + std::string(spec) + "'");
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (v == 0) {
    throw Error(ErrorKind::kFormat,
                "failpoint: count must be >= 1 in '" + std::string(spec) +
                    "'");
  }
  return v;
}

// Arms the environment spec once per process, before main() — which is
// how a forked+exec'd ri_server inherits the crash matrix's arming. A
// malformed spec dies loudly here instead of silently injecting nothing.
struct EnvArm {
  EnvArm() {
    const char* spec = std::getenv("OMADRM_FAILPOINTS");
    if (spec == nullptr || *spec == '\0') return;
    try {
      arm_from_spec(spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failpoint: bad OMADRM_FAILPOINTS: %s\n",
                   e.what());
      ::_exit(2);
    }
  }
} g_env_arm;

}  // namespace

Action fire(const char* site) {
  if (g_armed.load(std::memory_order_relaxed) == 0) return Action{};

  Registry& r = registry();
  MutexLock lock(r.mu);
  SiteState& s = r.sites[site];  // lazily created: unarmed sites count too
  ++s.hits;
  if (s.mode == Mode::kOff) return Action{};
  ++s.since_arm;

  switch (s.mode) {
    case Mode::kErrorOnce:
      disarm_locked(s);
      return Action{Op::kError, s.err};
    case Mode::kErrorEvery:
      if (s.since_arm % s.n == 0) return Action{Op::kError, s.err};
      return Action{};
    case Mode::kNthHit:
      if (s.since_arm == s.n) {
        disarm_locked(s);
        return Action{Op::kError, s.err};
      }
      return Action{};
    case Mode::kCrashAt:
      if (s.since_arm == s.n) return Action{Op::kCrash, 0};
      return Action{};
    case Mode::kOff:
      break;
  }
  return Action{};
}

int check(const char* site) {
  const Action a = fire(site);
  if (a.op == Op::kCrash) crash_now();
  return a.op == Op::kError ? a.err : 0;
}

void crash_now() { ::_exit(kCrashExitCode); }

void arm(std::string_view site, std::string_view spec) {
  if (site.empty()) {
    throw Error(ErrorKind::kFormat, "failpoint: empty site name");
  }
  Mode mode = Mode::kOff;
  std::uint64_t n = 1;
  int err = EIO;

  std::string_view mode_spec = spec;
  if (std::size_t colon = spec.find(':'); colon != std::string_view::npos) {
    mode_spec = spec.substr(0, colon);
    err = errno_from_name(spec.substr(colon + 1));
  }

  if (mode_spec == "off") {
    mode = Mode::kOff;
  } else if (mode_spec == "error-once" || mode_spec == "error") {
    mode = Mode::kErrorOnce;
  } else if (mode_spec.rfind("error-every-", 0) == 0) {
    mode = Mode::kErrorEvery;
    n = count_suffix(mode_spec, "error-every-");
  } else if (mode_spec.rfind("nth-hit-", 0) == 0) {
    mode = Mode::kNthHit;
    n = count_suffix(mode_spec, "nth-hit-");
  } else if (mode_spec == "crash") {
    mode = Mode::kCrashAt;
  } else if (mode_spec.rfind("crash-", 0) == 0) {
    mode = Mode::kCrashAt;
    n = count_suffix(mode_spec, "crash-");
  } else {
    throw Error(ErrorKind::kFormat,
                "failpoint: unknown mode '" + std::string(mode_spec) + "'");
  }

  Registry& r = registry();
  MutexLock lock(r.mu);
  SiteState& s = r.sites[std::string(site)];
  const bool was_armed = s.mode != Mode::kOff;
  s.mode = mode;
  s.n = n;
  s.err = err;
  s.since_arm = 0;
  const bool now_armed = s.mode != Mode::kOff;
  if (now_armed && !was_armed) g_armed.fetch_add(1, std::memory_order_relaxed);
  if (!now_armed && was_armed) g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void arm_from_spec(std::string_view multi_spec) {
  std::size_t pos = 0;
  while (pos < multi_spec.size()) {
    std::size_t end = multi_spec.find_first_of(";,", pos);
    if (end == std::string_view::npos) end = multi_spec.size();
    std::string_view entry = multi_spec.substr(pos, end - pos);
    pos = end + 1;
    // Tolerate "a=x; b=y" spacing in CLI flags and env vars.
    while (!entry.empty() && (entry.front() == ' ' || entry.front() == '\t')) {
      entry.remove_prefix(1);
    }
    while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\t')) {
      entry.remove_suffix(1);
    }
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw Error(ErrorKind::kFormat,
                  "failpoint: entry '" + std::string(entry) +
                      "' is not <site>=<spec>");
    }
    arm(entry.substr(0, eq), entry.substr(eq + 1));
  }
}

void reset_all() {
  Registry& r = registry();
  MutexLock lock(r.mu);
  for (auto& [name, s] : r.sites) disarm_locked(s);
  r.sites.clear();
}

std::uint64_t hits(std::string_view site) {
  Registry& r = registry();
  MutexLock lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

const std::vector<SiteInfo>& catalog() {
  // One entry per fire()/check() call site in the library. Keep this in
  // lockstep with the wiring — tests/test_crash_matrix.cpp iterates the
  // "store." prefix and fails if an armed site is never reached, which
  // catches both a dead catalog entry and a renamed call site.
  static const std::vector<SiteInfo> sites = {
      {"store.journal.write",
       "FileStore journal frame append (crash = torn half-written frame)"},
      {"store.journal.fsync", "FileStore journal append fsync"},
      {"store.counter.pwrite",
       "FileStore monotonic counter in-place write (buffered tier)"},
      {"store.counter.replace.open",
       "FileStore counter atomic-replace temp open (durable tier)"},
      {"store.counter.replace.write",
       "FileStore counter atomic-replace temp write (durable tier)"},
      {"store.counter.replace.fsync",
       "FileStore counter atomic-replace temp fsync (durable tier)"},
      {"store.counter.replace.rename",
       "FileStore counter atomic-replace rename (durable tier)"},
      {"store.snapshot.replace.open",
       "FileStore snapshot compaction temp open"},
      {"store.snapshot.replace.write",
       "FileStore snapshot compaction temp write"},
      {"store.snapshot.replace.fsync",
       "FileStore snapshot compaction temp fsync (durable tier)"},
      {"store.snapshot.replace.rename",
       "FileStore snapshot compaction rename"},
      {"store.compact.truncate",
       "FileStore journal truncate after a durable snapshot"},
      {"store.compact.fsync",
       "FileStore truncated-journal fsync (durable tier)"},
      {"store.load.open", "FileStore journal open-for-append during load"},
      {"store.group_commit.commit",
       "GroupCommitStore leader backing commit (fails the whole batch)"},
      {"net.server.send",
       "RiServer outbox flush send (connection is closed on failure)"},
  };
  return sites;
}

}  // namespace omadrm::failpoint
