// Runtime half of the lock-order validator (common/ordered_mutex.h).
//
// Per-thread held-lock stack with captured acquisition backtraces. Kept
// deliberately allocation-free (fixed-size array, backtrace into
// preallocated frames) so it is safe under every sanitizer and inside
// any lock in the tree, including the failpoint registry's.
//
// Always compiled, even in Release: only the OrderedMutex *alias* is
// build-type dependent, so tests/test_lock_order.cpp can death-test the
// checked variant in any build.
#include "common/ordered_mutex.h"

#include <execinfo.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

namespace omadrm::lockorder {

namespace {

constexpr int kMaxFrames = 32;
// Deepest real chain is 4 (shard → meta → store.front → store.backing,
// plus a failpoint); 16 leaves headroom for tests.
constexpr int kMaxHeld = 16;

struct Held {
  const void* mtx = nullptr;
  std::uint16_t rank = 0;
  const char* name = nullptr;
  void* frames[kMaxFrames];
  int frame_count = 0;
};

struct HeldStack {
  Held entries[kMaxHeld];
  int depth = 0;
};

thread_local HeldStack t_held;

[[noreturn]] void die(const Held& held, std::uint16_t rank, const char* name,
                      const char* what) {
  // Raw fds + backtrace_symbols_fd: no allocation, no locks — this must
  // work from inside an arbitrary lock acquisition on a wedged thread.
  std::fprintf(stderr,
               "lock-order violation (%s): acquiring \"%s\" (rank %u) while "
               "already holding \"%s\" (rank %u)\n",
               what, name, static_cast<unsigned>(rank), held.name,
               static_cast<unsigned>(held.rank));
  std::fprintf(stderr, "held lock \"%s\" was acquired at:\n", held.name);
  std::fflush(stderr);
  ::backtrace_symbols_fd(const_cast<void* const*>(held.frames),
                         held.frame_count, STDERR_FILENO);
  std::fprintf(stderr, "offending acquisition of \"%s\" at:\n", name);
  std::fflush(stderr);
  void* frames[kMaxFrames];
  int n = ::backtrace(frames, kMaxFrames);
  ::backtrace_symbols_fd(frames, n, STDERR_FILENO);
  std::abort();
}

}  // namespace

void note_acquire(const void* mtx, std::uint16_t rank, const char* name) {
  HeldStack& s = t_held;
  for (int i = 0; i < s.depth; ++i) {
    const Held& h = s.entries[i];
    if (h.mtx == mtx) die(h, rank, name, "recursive acquisition");
    if (h.rank == rank) die(h, rank, name, "two of a kind");
    if (h.rank > rank) die(h, rank, name, "rank inversion");
  }
  if (s.depth >= kMaxHeld) {
    std::fprintf(stderr,
                 "lock-order validator: held-lock stack overflow acquiring "
                 "\"%s\" (rank %u) at depth %d\n",
                 name, static_cast<unsigned>(rank), s.depth);
    std::abort();
  }
  Held& h = s.entries[s.depth++];
  h.mtx = mtx;
  h.rank = rank;
  h.name = name;
  h.frame_count = ::backtrace(h.frames, kMaxFrames);
}

void note_release(const void* mtx) {
  HeldStack& s = t_held;
  // Search from the top, but allow mid-stack release: on_device_hello
  // drops meta_mu_ before persist() on the fast path, and UniqueLock
  // relock patterns release/reacquire around backing commits.
  for (int i = s.depth - 1; i >= 0; --i) {
    if (s.entries[i].mtx != mtx) continue;
    for (int j = i; j + 1 < s.depth; ++j) s.entries[j] = s.entries[j + 1];
    --s.depth;
    return;
  }
  std::fprintf(stderr,
               "lock-order validator: releasing a mutex this thread does not "
               "hold\n");
  std::abort();
}

void check_held(const void* mtx, const char* name) {
  const HeldStack& s = t_held;
  for (int i = 0; i < s.depth; ++i) {
    if (s.entries[i].mtx == mtx) return;
  }
  std::fprintf(stderr,
               "lock-order validator: assert_held(\"%s\") failed — mutex not "
               "held by this thread\n",
               name);
  std::fflush(stderr);
  void* frames[32];
  int n = ::backtrace(frames, 32);
  ::backtrace_symbols_fd(frames, n, STDERR_FILENO);
  std::abort();
}

}  // namespace omadrm::lockorder
