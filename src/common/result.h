// Unified rich outcome type.
//
// `Result<T>` carries a StatusCode plus a human-readable context string
// ("RI reported access-denied for domain:home"), and — on success — a
// value. It replaces the bare status enums at every protocol boundary:
// sessions, transports, and the DrmAgent conveniences all speak Result.
//
// Conventions:
//   - `Result<T>` is ok iff code() == StatusCode::kOk; ok results always
//     hold a value, failures never do (enforced at construction).
//   - Accessing the value of a failed result throws omadrm::Error(kState)
//     — a contract violation, mirroring std::optional-misuse semantics.
//   - `operator==(StatusCode)` compares the code only, so tests and
//     callers can write `if (r == StatusCode::kOk)` / EXPECT_EQ directly.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "common/error.h"
#include "common/status.h"

namespace omadrm {

namespace detail {

class ResultBase {
 public:
  StatusCode code() const { return code_; }
  const std::string& context() const { return context_; }
  bool ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return ok(); }

  /// "access-denied: RI reported AccessDenied for domain:home"
  std::string describe() const {
    std::string out = omadrm::to_string(code_);
    if (!context_.empty()) {
      out += ": ";
      out += context_;
    }
    return out;
  }

 protected:
  ResultBase(StatusCode code, std::string context)
      : code_(code), context_(std::move(context)) {}

  StatusCode code_;
  std::string context_;
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Result;

/// Value-free outcome (status + context only).
template <>
class [[nodiscard]] Result<void> : public detail::ResultBase {
 public:
  /// Success.
  Result() : ResultBase(StatusCode::kOk, {}) {}
  /// Any outcome; usually a failure code plus what went wrong.
  explicit Result(StatusCode code, std::string context = {})
      : ResultBase(code, std::move(context)) {}
};

template <typename T>
class [[nodiscard]] Result : public detail::ResultBase {
 public:
  /// Success carrying a value.
  Result(T value) : ResultBase(StatusCode::kOk, {}), value_(std::move(value)) {}

  /// Failure. Claiming kOk without a value is a contract violation.
  explicit Result(StatusCode code, std::string context = {})
      : ResultBase(code, std::move(context)) {
    if (code == StatusCode::kOk) {
      throw Error(ErrorKind::kState, "Result: kOk requires a value");
    }
  }

  const T& value() const& { return require(); }
  T& value() & { return const_cast<T&>(require()); }
  T&& value() && { return std::move(const_cast<T&>(require())); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  const T& require() const {
    if (!value_) {
      throw Error(ErrorKind::kState,
                  "Result: value of failed result accessed (" + describe() +
                      ")");
    }
    return *value_;
  }

  std::optional<T> value_;
};

template <typename T>
bool operator==(const Result<T>& r, StatusCode code) {
  return r.code() == code;
}

template <typename T>
std::ostream& operator<<(std::ostream& os, const Result<T>& r) {
  return os << r.describe();
}

/// Rebuilds a failure as a Result of another value type (code + context
/// carry over). Only meaningful for failed results.
template <typename To, typename From>
Result<To> propagate(const Result<From>& failed) {
  return Result<To>(failed.code(), failed.context());
}

}  // namespace omadrm
