// Library-wide exception type.
//
// Exceptions are reserved for *contract violations and malformed input*
// (bad lengths, unparseable encodings, protocol misuse). Security checks
// that can legitimately fail at runtime — signature / MAC / hash / cert
// verification, permission evaluation — return typed results instead; a
// failed check is an expected outcome, not an exceptional one.
#pragma once

#include <stdexcept>
#include <string>

namespace omadrm {

enum class ErrorKind {
  kRange,     // out-of-range access, length mismatch
  kFormat,    // malformed serialized data (DER, XML, DCF, ROAP, ...)
  kCrypto,    // cryptographic contract violation (bad key size, ...)
  kProtocol,  // ROAP / DRM state machine misuse
  kState,     // object used before initialization or after invalidation
  kNotFound,  // lookup failure for a required entity
  kTransport, // envelope lost / peer unreachable at the wire boundary
  kBusy,      // peer shed the request under overload; retry with backoff
  kTimeout,   // retry deadline exceeded at the transport boundary
  kExhausted, // transport retry budget spent without a delivery
};

/// Converts an ErrorKind to a stable human-readable tag ("format", ...).
const char* to_string(ErrorKind kind);

class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& message)
      : std::runtime_error(std::string(to_string(kind)) + ": " + message),
        kind_(kind) {}

  ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

inline const char* to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kRange: return "range";
    case ErrorKind::kFormat: return "format";
    case ErrorKind::kCrypto: return "crypto";
    case ErrorKind::kProtocol: return "protocol";
    case ErrorKind::kState: return "state";
    case ErrorKind::kNotFound: return "not-found";
    case ErrorKind::kTransport: return "transport";
    case ErrorKind::kBusy: return "busy";
    case ErrorKind::kTimeout: return "timeout";
    case ErrorKind::kExhausted: return "exhausted";
  }
  return "unknown";
}

}  // namespace omadrm
