// Clang Thread Safety Analysis attribute macros.
//
// These wrap Clang's `-Wthread-safety` capability attributes so the
// repo's lock discipline — which lock guards which field, which private
// helpers must be entered with a shard lock held — is machine-checked at
// compile time instead of living in comments. Under any other compiler
// (the local toolchain builds with GCC) every macro expands to nothing,
// so annotations are free documentation there and hard build breaks in
// the dedicated `-Werror=thread-safety` CI job.
//
// Conventions in this repo:
//   - Every mutex member is an `omadrm::OrderedMutex` /
//     `omadrm::OrderedSharedMutex` (common/ordered_mutex.h), which are
//     CAPABILITY types; raw std::mutex members in headers are a lint
//     error (scripts/lint_invariants.py, rule `mutex-header`).
//   - Every field a mutex protects carries GUARDED_BY(that_mutex).
//   - Private helpers documented "caller holds X" carry REQUIRES(X),
//     turning the prose contract into an uncompilable-misuse contract.
//   - Lambdas invoked through type-erased seams (handler templates,
//     condition-variable predicates) open with `mu.assert_held()`, the
//     runtime-checked ASSERT_CAPABILITY escape for call paths the static
//     analysis cannot follow.
#pragma once

#if defined(__clang__)
#define OMADRM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define OMADRM_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

// A type that is a lockable capability (mutex wrappers).
#define CAPABILITY(x) OMADRM_THREAD_ANNOTATION(capability(x))

// RAII types whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY OMADRM_THREAD_ANNOTATION(scoped_lockable)

// Data members readable/writable only with the named capability held.
#define GUARDED_BY(x) OMADRM_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) OMADRM_THREAD_ANNOTATION(pt_guarded_by(x))

// Static lock-ordering hints (the runtime rank validator in
// common/ordered_mutex.h is the enforced form; these document intent
// where a pairwise relation is worth stating in the type system too).
#define ACQUIRED_BEFORE(...) OMADRM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) OMADRM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function-entry contracts: the caller must hold the capability.
#define REQUIRES(...) OMADRM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  OMADRM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Functions that acquire / release capabilities.
#define ACQUIRE(...) OMADRM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  OMADRM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) OMADRM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  OMADRM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  OMADRM_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  OMADRM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  OMADRM_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

// The caller must NOT hold the capability (deadlock-by-reentry guard).
#define EXCLUDES(...) OMADRM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Runtime-verified assertion that the capability is held; the escape
// hatch for call paths the analysis cannot follow (type-erased handlers,
// condition-variable predicates).
#define ASSERT_CAPABILITY(x) OMADRM_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  OMADRM_THREAD_ANNOTATION(assert_shared_capability(x))

// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) OMADRM_THREAD_ANNOTATION(lock_returned(x))

// Opt a function out of the analysis entirely. Every use in this repo
// must carry a comment saying why (config-time single-threaded access,
// deliberate cross-object aliasing the analysis cannot express).
#define NO_THREAD_SAFETY_ANALYSIS \
  OMADRM_THREAD_ANNOTATION(no_thread_safety_analysis)
