#include "common/random.h"

#include "common/error.h"

namespace omadrm {

Bytes Rng::bytes(std::size_t len) {
  Bytes out(len);
  if (len > 0) fill(out.data(), len);
  return out;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) throw Error(ErrorKind::kRange, "uniform(0)");
  // Rejection sampling to avoid modulo bias.
  std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

DeterministicRng::DeterministicRng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : state_) s = splitmix64(x);
}

std::uint64_t DeterministicRng::next_u64() {
  std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void DeterministicRng::fill(std::uint8_t* out, std::size_t len) {
  std::size_t i = 0;
  while (i < len) {
    std::uint64_t v = next_u64();
    for (int b = 0; b < 8 && i < len; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
}

}  // namespace omadrm
