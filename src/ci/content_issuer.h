// Content Issuer — owns digital content, packages it into DCFs, and
// escrows the Content Encryption Keys so Rights Issuers it has a business
// agreement with can mint licenses (paper Figure 1, "Any protocol" edge).
#pragma once

#include <map>
#include <string>

#include "common/random.h"
#include "dcf/dcf.h"
#include "provider/provider.h"

namespace omadrm::ci {

class ContentIssuer {
 public:
  ContentIssuer(std::string name, provider::CryptoProvider& crypto, Rng& rng);

  /// Encrypts `content` under a fresh K_CEK and wraps it in a DCF. The
  /// K_CEK is retained in the escrow keyed by content id.
  dcf::Dcf package(dcf::Headers headers, ByteView content);

  /// K_CEK lookup for license negotiation with a Rights Issuer;
  /// nullptr when this issuer never packaged that content id.
  const Bytes* kcek_for(const std::string& content_id) const;

  const std::string& name() const { return name_; }
  std::size_t packaged_count() const { return escrow_.size(); }

 private:
  std::string name_;
  provider::CryptoProvider& crypto_;
  Rng& rng_;
  std::map<std::string, Bytes> escrow_;  // content id -> K_CEK
};

}  // namespace omadrm::ci
