#include "ci/content_issuer.h"

#include "common/error.h"

namespace omadrm::ci {

ContentIssuer::ContentIssuer(std::string name,
                             provider::CryptoProvider& crypto, Rng& rng)
    : name_(std::move(name)), crypto_(crypto), rng_(rng) {}

dcf::Dcf ContentIssuer::package(dcf::Headers headers, ByteView content) {
  if (headers.content_id.empty()) {
    throw Error(ErrorKind::kProtocol, "ci: content id required");
  }
  if (escrow_.count(headers.content_id)) {
    throw Error(ErrorKind::kProtocol,
                "ci: content id already packaged: " + headers.content_id);
  }
  Bytes kcek = rng_.bytes(16);
  Bytes iv = rng_.bytes(16);
  Bytes payload = crypto_.aes_cbc_encrypt(kcek, iv, content);
  dcf::Dcf out(std::move(headers), std::move(iv), std::move(payload),
               content.size());
  escrow_.emplace(out.headers().content_id, std::move(kcek));
  return out;
}

const Bytes* ContentIssuer::kcek_for(const std::string& content_id) const {
  auto it = escrow_.find(content_id);
  return it == escrow_.end() ? nullptr : &it->second;
}

}  // namespace omadrm::ci
