#!/usr/bin/env python3
"""Repo-invariant linter for the OMA DRM 2 reproduction.

Five rule classes, each encoding an invariant the test suite cannot see
(tests exercise behavior; these are structural properties of the source):

  failpoint-adjacency  Every raw durability syscall in src/store/ sits
                       next to a failpoint gate (failpoint::fire/check,
                       injected_failure) or carries an explicit
                       `// nofailpoint: <reason>` escape within the
                       4 lines above it. Keeps the crash matrix honest:
                       a new fsync/rename with no failpoint is exactly
                       the durability transition chaos tests can't reach.

  classify-coverage    RetryPolicy::classify() in src/roap/retry.cpp
                       names every StatusCode enumerator explicitly and
                       has no `default:` — the fault table cannot drift
                       when status.h grows a code. (Compile-time twin:
                       -Wswitch on the default-less switch.)

  wire-alloc           Wire-path files (xml parse/serialize, roap
                       envelope, base64, net framing) allocate only
                       through annotated seams: a naked `new`, `malloc(`
                       or `std::to_string(` needs a `// pool:` or
                       `// coldpath:` comment on the line or within the
                       2 lines above. Guards the paper's zero-copy
                       parse-path claim against regression by drive-by
                       edits.

  mutex-header         No header under src/ declares raw std::mutex /
                       std::shared_mutex / std::condition_variable
                       state: lock-bearing types use OrderedMutex (rank
                       checked, TSA capability) and condition_variable_any,
                       and a header that declares an OrderedMutex member
                       must GUARDED_BY-annotate at least one field.
                       common/ordered_mutex.h + thread_annotations.h are
                       the allowlisted foundations.

  catalog-drift        The literal site names wired through
                       failpoint::fire/check/injected_failure (incl. the
                       ReplaceSites constexpr tables) exactly match
                       failpoint::catalog(). `--fix-catalog` regenerates
                       the catalog from the discovered sites, keeping
                       existing descriptions.

Exit status: 0 clean, 1 violations (one `path:line: [rule] message` per
finding), 2 usage/internal error. `--self-test` first proves every rule
still fires on seeded violations — CI runs that mode so a regex rot
can't silently turn a rule off.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# --------------------------------------------------------------------------
# Shared helpers
# --------------------------------------------------------------------------


def strip_comment(line: str) -> str:
    """Code portion of a line ( // comments removed, strings blanked)."""
    # Blank string literals first so "// inside a string" survives and
    # site-name literals don't fake syscall matches.
    no_str = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    cut = no_str.find("//")
    return no_str if cut < 0 else no_str[:cut]


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Rule: failpoint-adjacency
# --------------------------------------------------------------------------

# Durability syscalls: the global-namespace spellings the store uses.
SYSCALL_RE = re.compile(r"::(write|pwrite|fsync|fdatasync|rename|ftruncate)\s*\(")
OPEN_RE = re.compile(r"::open\s*\(")
WRITE_OPEN_FLAGS = re.compile(r"O_(WRONLY|RDWR|CREAT|TRUNC|APPEND)")
# Any failpoint:: use counts — fire/check gates, and crash_now/Op in a
# crash branch whose half-write IS the injected fault.
FAILPOINT_NEAR = re.compile(r"failpoint::|injected_failure")
NOFAILPOINT = re.compile(r"//\s*nofailpoint:\s*\S")

# Coverage window around a flagged syscall line (1-based offsets).
FP_ABOVE = 6  # failpoint gate this many lines above ...
FP_BELOW = 4  # ... or below still counts as guarding the syscall.
ESCAPE_REACH = 8  # an escape comment covers its following paragraph


def escape_covered(lines: list[str], marker: re.Pattern) -> set[int]:
    """Indices covered by an escape comment: the marker line itself plus
    the non-blank lines that follow it (its statement paragraph), capped
    at ESCAPE_REACH lines — so one comment covers a multi-line comment
    block plus the multi-syscall statement group under it, but nothing
    past the next blank line."""
    covered: set[int] = set()
    for i, raw in enumerate(lines):
        if not marker.search(raw):
            continue
        covered.add(i)
        for j in range(i + 1, min(len(lines), i + 1 + ESCAPE_REACH)):
            if not lines[j].strip():
                break
            covered.add(j)
    return covered


def check_failpoint_adjacency(path: str, lines: list[str]) -> list[Finding]:
    findings: list[Finding] = []
    escaped = escape_covered(lines, NOFAILPOINT)
    for i, raw in enumerate(lines):
        code = strip_comment(raw)
        hit = SYSCALL_RE.search(code)
        if not hit:
            m = OPEN_RE.search(code)
            if not m:
                continue
            # ::open is only a durability syscall when opened for write;
            # flags may sit on the same or the continuation line.
            flags_region = code[m.end():] + " " + (
                strip_comment(lines[i + 1]) if i + 1 < len(lines) else "")
            if not WRITE_OPEN_FLAGS.search(flags_region):
                continue
            name = "open-for-write"
        else:
            name = hit.group(1)
        lo = max(0, i - FP_ABOVE)
        hi = min(len(lines), i + FP_BELOW + 1)
        window = lines[lo:hi]
        if any(FAILPOINT_NEAR.search(strip_comment(w)) for w in window):
            continue
        if i in escaped:
            continue
        findings.append(Finding(
            path, i + 1, "failpoint-adjacency",
            f"raw ::{name} has no failpoint gate within -{FP_ABOVE}/+{FP_BELOW} "
            f"lines and no `// nofailpoint: <reason>` escape"))
    return findings


# --------------------------------------------------------------------------
# Rule: classify-coverage
# --------------------------------------------------------------------------

ENUMERATOR_RE = re.compile(r"^\s*(k[A-Za-z0-9]+)\s*(?:=\s*[^,]+)?,?\s*(?://.*)?$")


def parse_status_codes(text: str) -> list[str]:
    m = re.search(r"enum\s+class\s+StatusCode[^{]*\{(.*?)\}", text, re.S)
    if not m:
        return []
    names = []
    for line in m.group(1).splitlines():
        e = ENUMERATOR_RE.match(line)
        if e:
            names.append(e.group(1))
    return names


def check_classify_coverage(status_text: str, retry_path: str,
                            retry_text: str) -> list[Finding]:
    findings: list[Finding] = []
    codes = set(parse_status_codes(status_text))
    if not codes:
        return [Finding("src/common/status.h", 1, "classify-coverage",
                        "could not parse enum class StatusCode")]
    m = re.search(r"FaultClass\s+RetryPolicy::classify\s*\([^)]*\)\s*\{(.*?)\n\}",
                  retry_text, re.S)
    if not m:
        return [Finding(retry_path, 1, "classify-coverage",
                        "could not find RetryPolicy::classify()")]
    body = m.group(1)
    body_line = retry_text[:m.start()].count("\n") + 1
    cases = set(re.findall(r"case\s+StatusCode::(k[A-Za-z0-9]+)\s*:", body))
    if re.search(r"^\s*default\s*:", body, re.M):
        findings.append(Finding(
            retry_path, body_line, "classify-coverage",
            "classify() has a `default:` — every StatusCode must be an "
            "explicit case so -Wswitch catches new codes"))
    for missing in sorted(codes - cases):
        findings.append(Finding(
            retry_path, body_line, "classify-coverage",
            f"StatusCode::{missing} is not classified (add it to the "
            f"retriable or terminal case list)"))
    for stale in sorted(cases - codes):
        findings.append(Finding(
            retry_path, body_line, "classify-coverage",
            f"classify() names StatusCode::{stale} which status.h no "
            f"longer declares"))
    return findings


# --------------------------------------------------------------------------
# Rule: wire-alloc
# --------------------------------------------------------------------------

WIRE_FILES = [
    "src/xml/node.cpp", "src/xml/node.h",
    "src/xml/writer.cpp", "src/xml/writer.h",
    "src/xml/xml.cpp", "src/xml/xml.h",
    "src/xml/arena.cpp", "src/xml/arena.h",
    "src/roap/envelope.cpp", "src/roap/envelope.h",
    "src/common/base64.cpp", "src/common/base64.h",
    "src/net/frame.cpp", "src/net/frame.h",
]

ALLOC_RE = re.compile(r"\bnew\b\s*[\(:A-Za-z_]|\bmalloc\s*\(|std::to_string\s*\(")
ALLOC_ESCAPE = re.compile(r"//\s*(pool|coldpath):")


def check_wire_alloc(path: str, lines: list[str]) -> list[Finding]:
    findings: list[Finding] = []
    escaped = escape_covered(lines, ALLOC_ESCAPE)
    for i, raw in enumerate(lines):
        if raw.lstrip().startswith("#"):
            continue  # #include <new> etc.
        code = strip_comment(raw)
        if not ALLOC_RE.search(code):
            continue
        if i in escaped:
            continue
        findings.append(Finding(
            path, i + 1, "wire-alloc",
            "naked allocation on a wire path — route it through the arena "
            "(`// pool:`) or mark the non-hot path (`// coldpath: <why>`)"))
    return findings


# --------------------------------------------------------------------------
# Rule: mutex-header
# --------------------------------------------------------------------------

MUTEX_HEADER_ALLOWLIST = {
    "src/common/ordered_mutex.h",      # wraps std::mutex by design
    "src/common/thread_annotations.h", # defines the annotation macros
}

RAW_SYNC_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|condition_variable)\b")
ORDERED_MEMBER_RE = re.compile(r"\bOrdered(?:Shared)?Mutex\s+\w+\s*[{;=]")
GUARDED_RE = re.compile(r"\bGUARDED_BY\s*\(")


def check_mutex_header(path: str, lines: list[str]) -> list[Finding]:
    findings: list[Finding] = []
    text_code = [strip_comment(l) for l in lines]
    for i, code in enumerate(text_code):
        if lines[i].lstrip().startswith("#"):
            continue  # includes of <mutex> / <condition_variable> are fine
        m = RAW_SYNC_RE.search(code)
        if m:
            findings.append(Finding(
                path, i + 1, "mutex-header",
                f"raw std::{m.group(1)} in a public header — use "
                f"OrderedMutex/OrderedSharedMutex (rank-checked, TSA "
                f"capability) or std::condition_variable_any"))
    has_member = any(ORDERED_MEMBER_RE.search(c) for c in text_code)
    has_guard = any(GUARDED_RE.search(l) for l in lines)
    if has_member and not has_guard:
        findings.append(Finding(
            path, 1, "mutex-header",
            "declares an OrderedMutex member but GUARDED_BY-annotates no "
            "field — annotate what the lock protects"))
    return findings


# --------------------------------------------------------------------------
# Rule: catalog-drift (+ --fix-catalog)
# --------------------------------------------------------------------------

SITE_CALL_RE = re.compile(
    r"(?:failpoint::(?:fire|check)|injected_failure)\s*\(\s*\"([^\"]+)\"")
REPLACE_SITES_RE = re.compile(r"constexpr\s+ReplaceSites\s+\w+\s*\{([^}]*)\}", re.S)
CATALOG_ENTRY_RE = re.compile(r"\{\s*\"([^\"]+)\"\s*,\s*((?:\"(?:[^\"\\]|\\.)*\"\s*)+)\}")


def discover_sites(files: dict[str, str]) -> dict[str, str]:
    """site name -> first declaring file, from the real wiring."""
    sites: dict[str, str] = {}
    for path, text in sorted(files.items()):
        if path.endswith("src/common/failpoint.cpp"):
            continue
        for m in SITE_CALL_RE.finditer(text):
            sites.setdefault(m.group(1), path)
        for m in REPLACE_SITES_RE.finditer(text):
            for name in re.findall(r"\"([^\"]+)\"", m.group(1)):
                sites.setdefault(name, path)
    return sites


def parse_catalog(failpoint_text: str) -> tuple[dict[str, str], tuple[int, int]]:
    """catalog site -> raw description source, plus (start, end) of the
    initializer list inside the text (for --fix-catalog rewrites)."""
    m = re.search(
        r"static\s+const\s+std::vector<SiteInfo>\s+sites\s*=\s*\{(.*?)\n\s*\};",
        failpoint_text, re.S)
    if not m:
        return {}, (-1, -1)
    entries = {}
    for e in CATALOG_ENTRY_RE.finditer(m.group(1)):
        entries[e.group(1)] = e.group(2).strip()
    return entries, (m.start(1), m.end(1))


def check_catalog_drift(files: dict[str, str],
                        failpoint_path: str) -> list[Finding]:
    failpoint_text = files.get(failpoint_path, "")
    catalog, span = parse_catalog(failpoint_text)
    if span[0] < 0:
        return [Finding(failpoint_path, 1, "catalog-drift",
                        "could not locate the catalog() sites vector")]
    wired = discover_sites(files)
    findings = []
    cat_line = failpoint_text[:span[0]].count("\n") + 1
    for name in sorted(set(wired) - set(catalog)):
        findings.append(Finding(
            failpoint_path, cat_line, "catalog-drift",
            f"site \"{name}\" is wired in {wired[name]} but missing from "
            f"catalog() — add it or run --fix-catalog"))
    for name in sorted(set(catalog) - set(wired)):
        findings.append(Finding(
            failpoint_path, cat_line, "catalog-drift",
            f"catalog() lists \"{name}\" but no fire/check/injected_failure "
            f"call wires it — dead entry or renamed site"))
    return findings


def fix_catalog(repo: pathlib.Path, files: dict[str, str],
                failpoint_path: str) -> bool:
    """Regenerate catalog() from the discovered sites. Existing
    descriptions survive; new sites get a TODO placeholder; dead entries
    are dropped. Order: existing catalog order for kept sites, then new
    sites sorted. Returns True if the file changed."""
    text = files[failpoint_path]
    catalog, span = parse_catalog(text)
    if span[0] < 0:
        print(f"error: cannot parse catalog() in {failpoint_path}",
              file=sys.stderr)
        return False
    wired = discover_sites(files)
    ordered = [n for n in catalog if n in wired]
    ordered += sorted(n for n in wired if n not in catalog)
    if ordered == list(catalog):
        return False
    chunks = []
    for name in ordered:
        desc = catalog.get(name, f'"TODO: describe (wired in {wired[name]})"')
        entry = f'      {{"{name}",\n       {desc}}},'
        # Short entries fit the one-line form the file already uses.
        one_line = f'      {{"{name}", {desc}}},'
        chunks.append(one_line if len(one_line) <= 78 else entry)
    new_body = "\n" + "\n".join(chunks)
    new_text = text[:span[0]] + new_body + text[span[1]:]
    (repo / failpoint_path).write_text(new_text)
    print(f"rewrote catalog() in {failpoint_path}: "
          f"{len(ordered)} sites ({len(set(wired) - set(catalog))} added, "
          f"{len(set(catalog) - set(wired))} dropped)")
    return True


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def load_tree(repo: pathlib.Path) -> dict[str, str]:
    files = {}
    for sub in ("src", "tools", "bench"):
        root = repo / sub
        if not root.is_dir():
            continue
        for p in sorted(root.rglob("*")):
            if p.suffix in (".cpp", ".h"):
                rel = p.relative_to(repo).as_posix()
                files[rel] = p.read_text()
    return files


def run_lint(repo: pathlib.Path) -> list[Finding]:
    files = load_tree(repo)
    findings: list[Finding] = []

    for path, text in files.items():
        lines = text.splitlines()
        if path.startswith("src/store/") and path.endswith(".cpp"):
            findings += check_failpoint_adjacency(path, lines)
        if path in WIRE_FILES:
            findings += check_wire_alloc(path, lines)
        if path.startswith("src/") and path.endswith(".h") \
                and path not in MUTEX_HEADER_ALLOWLIST:
            findings += check_mutex_header(path, lines)

    status = files.get("src/common/status.h", "")
    retry = files.get("src/roap/retry.cpp", "")
    findings += check_classify_coverage(status, "src/roap/retry.cpp", retry)
    findings += check_catalog_drift(files, "src/common/failpoint.cpp")
    return findings


# --------------------------------------------------------------------------
# Self test: each rule must fire on a seeded violation and stay quiet on
# the corresponding clean snippet. Guards against regex rot disabling a
# rule without anyone noticing (a linter that never fails is decoration).
# --------------------------------------------------------------------------


def self_test() -> list[str]:
    errors: list[str] = []

    def expect(rule: str, found: list[Finding], want: bool, what: str):
        hit = any(f.rule == rule for f in found)
        if hit != want:
            errors.append(f"{rule}: expected {'a' if want else 'no'} "
                          f"finding for {what}, got {[str(f) for f in found]}")

    # failpoint-adjacency -------------------------------------------------
    bad = ["void f(int fd) {", "  ::fsync(fd);", "}"]
    expect("failpoint-adjacency",
           check_failpoint_adjacency("t.cpp", bad), True, "naked fsync")
    good = ["void f(int fd) {",
            "  if (injected_failure(\"store.x.fsync\")) return;",
            "  ::fsync(fd);", "}"]
    expect("failpoint-adjacency",
           check_failpoint_adjacency("t.cpp", good), False, "gated fsync")
    escaped = ["void f(int fd) {", "  // nofailpoint: best-effort",
               "  ::fsync(fd);", "}"]
    expect("failpoint-adjacency",
           check_failpoint_adjacency("t.cpp", escaped), False,
           "nofailpoint escape")
    ro_open = ["int fd = ::open(p, O_RDONLY);"]
    expect("failpoint-adjacency",
           check_failpoint_adjacency("t.cpp", ro_open), False,
           "read-only open")
    w_open = ["int fd = ::open(p, O_WRONLY | O_CREAT, 0600);"]
    expect("failpoint-adjacency",
           check_failpoint_adjacency("t.cpp", w_open), True,
           "write open with no gate")

    # classify-coverage ---------------------------------------------------
    status = ("enum class StatusCode {\n  kOk = 0,\n  kTimeout,\n"
              "  kAccessDenied,\n};")
    complete = ("FaultClass RetryPolicy::classify(StatusCode code) {\n"
                "  switch (code) {\n"
                "    case StatusCode::kTimeout:\n"
                "      return FaultClass::kRetriable;\n"
                "    case StatusCode::kOk:\n"
                "    case StatusCode::kAccessDenied:\n"
                "      return FaultClass::kTerminal;\n  }\n"
                "  return FaultClass::kTerminal;\n}")
    expect("classify-coverage",
           check_classify_coverage(status, "r.cpp", complete), False,
           "exhaustive classify")
    missing = complete.replace("    case StatusCode::kAccessDenied:\n", "")
    expect("classify-coverage",
           check_classify_coverage(status, "r.cpp", missing), True,
           "classify missing an enumerator")
    defaulted = complete.replace("    case StatusCode::kAccessDenied:\n",
                                 "    default:\n")
    expect("classify-coverage",
           check_classify_coverage(status, "r.cpp", defaulted), True,
           "classify with default:")

    # wire-alloc ----------------------------------------------------------
    expect("wire-alloc",
           check_wire_alloc("w.cpp", ["auto* n = new Node();"]), True,
           "naked new")
    expect("wire-alloc",
           check_wire_alloc("w.cpp", ["s += std::to_string(len);"]), True,
           "naked to_string")
    expect("wire-alloc",
           check_wire_alloc("w.cpp", ["// coldpath: error text",
                                      "s += std::to_string(len);"]), False,
           "escaped to_string")
    expect("wire-alloc",
           check_wire_alloc("w.cpp", ["#include <new>"]), False,
           "include line")

    # mutex-header --------------------------------------------------------
    expect("mutex-header",
           check_mutex_header("h.h", ["  std::mutex mu_;"]), True,
           "raw std::mutex member")
    expect("mutex-header",
           check_mutex_header("h.h", ["  std::condition_variable cv_;"]),
           True, "raw condition_variable")
    expect("mutex-header",
           check_mutex_header("h.h", ["  std::condition_variable_any cv_;"]),
           False, "condition_variable_any")
    expect("mutex-header",
           check_mutex_header(
               "h.h", ["  OrderedMutex mu_{LockRank::kRng, \"x\"};",
                       "  int v_ GUARDED_BY(mu_) = 0;"]), False,
           "annotated OrderedMutex")
    expect("mutex-header",
           check_mutex_header(
               "h.h", ["  OrderedMutex mu_{LockRank::kRng, \"x\"};",
                       "  int v_ = 0;"]), True,
           "OrderedMutex with no GUARDED_BY")

    # catalog-drift -------------------------------------------------------
    fp_tmpl = ("const std::vector<SiteInfo>& catalog() {{\n"
               "  static const std::vector<SiteInfo> sites = {{\n"
               "{entries}\n"
               "  }};\n  return sites;\n}}\n")
    wired_cpp = 'void f() { failpoint::fire("store.a.write"); }\n'
    clean = {"src/common/failpoint.cpp":
             fp_tmpl.format(entries='      {"store.a.write", "desc"},'),
             "src/store/x.cpp": wired_cpp}
    expect("catalog-drift",
           check_catalog_drift(clean, "src/common/failpoint.cpp"), False,
           "catalog in sync")
    drifted = {"src/common/failpoint.cpp":
               fp_tmpl.format(entries='      {"store.dead.site", "desc"},'),
               "src/store/x.cpp": wired_cpp}
    expect("catalog-drift",
           check_catalog_drift(drifted, "src/common/failpoint.cpp"), True,
           "catalog with dead + missing entries")
    return errors


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--fix-catalog", action="store_true",
                    help="rewrite failpoint catalog() from wired sites")
    ap.add_argument("--skip-self-test", action="store_true",
                    help="skip the rule self-test (it is cheap; don't)")
    args = ap.parse_args()

    repo = pathlib.Path(args.repo).resolve()
    if not (repo / "src").is_dir():
        print(f"error: {repo} does not look like the repo root",
              file=sys.stderr)
        return 2

    if not args.skip_self_test:
        errs = self_test()
        if errs:
            for e in errs:
                print(f"self-test FAILED: {e}", file=sys.stderr)
            return 2

    if args.fix_catalog:
        files = load_tree(repo)
        fix_catalog(repo, files, "src/common/failpoint.cpp")
        # fall through: lint the (possibly rewritten) tree

    findings = run_lint(repo)
    for f in findings:
        print(f)
    if findings:
        print(f"\nlint_invariants: {len(findings)} violation(s)",
              file=sys.stderr)
        return 1
    print("lint_invariants: OK "
          "(failpoint-adjacency, classify-coverage, wire-alloc, "
          "mutex-header, catalog-drift)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
