#!/usr/bin/env bash
# Run clang-tidy (profile: .clang-tidy at the repo root) over the
# library and tools sources, using a compile_commands.json exported by
# CMake. Usage:
#
#   scripts/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# The build dir defaults to build-tidy/ and is configured on demand with
# CMAKE_EXPORT_COMPILE_COMMANDS=ON. Exits non-zero on any finding in a
# WarningsAsErrors family (concurrency-*) or on tool failure. The CI
# static-analysis job runs this with clang; locally it degrades to a
# clear error if clang-tidy is absent (the dev container is GCC-only —
# that is expected, not a setup bug).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"$repo/build-tidy"}"
shift || true
[ "${1:-}" = "--" ] && shift

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not on PATH (GCC-only container?)" >&2
  echo "run_clang_tidy: install clang-tidy or run in the CI job" >&2
  exit 2
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  cmake -S "$repo" -B "$build_dir" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
fi

# Library + tools only: tests and benches trip bugprone checks on gtest
# macros and benchmark boilerplate with no production value.
mapfile -t sources < <(find "$repo/src" "$repo/tools" -name '*.cpp' | sort)

echo "run_clang_tidy: ${#sources[@]} files, profile $repo/.clang-tidy"
fail=0
for f in "${sources[@]}"; do
  clang-tidy -p "$build_dir" --quiet "$@" "$f" || fail=1
done

if [ "$fail" -ne 0 ]; then
  echo "run_clang_tidy: findings above (WarningsAsErrors: concurrency-*)" >&2
  exit 1
fi
echo "run_clang_tidy: clean"
