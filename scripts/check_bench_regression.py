#!/usr/bin/env python3
"""Gate on checked-in benchmark baselines.

Handles both benchmark families by dispatching on the JSON's "bench"
field:

  roap_session   gates on fleet exchanges/s (the least noisy of that
                 bench's outputs on shared CI runners).
  dcf_stream     gates on streaming decrypt MB/s at the largest payload
                 size present in BOTH documents (quick CI runs omit the
                 16 MiB point the full baseline carries).
  state_store    gates on the buffered FileStore p50 commit latency,
                 expressed as a rate (1e6 / commit_us_p50). The sealed
                 journal + counter path every constraint burn rides;
                 wall-clock commits/s swings 2x with machine load while
                 the p50 stays within a few percent, and the fsync-on
                 figure is disk hardware, so both only print.
  net_fleet      gates on exchanges/s through the framed-TCP server at
                 the largest agent count present in BOTH documents
                 (quick CI runs only measure the 8-agent point the full
                 baseline also carries), and — when both documents carry
                 an exchanges_per_s_vs_workers sweep — additionally on
                 the largest shared worker count of that sweep, so a
                 regression that only shows up multi-worker (a new
                 serialization point in the sharded RI) cannot hide
                 behind a healthy aggregate number. Also fails outright
                 when the current run saw transport errors, server
                 refusals, or an unclean server drain — those are
                 correctness, not noise. The "overload" section (the
                 throttled-server busy-shed sweep) is exempt from the
                 zero-refusal sum — sheds there are the point — and is
                 gated separately: sessions_failed must be 0 and sheds
                 nonzero (correctness: admission control engaged and
                 stayed retriable), and the acquisition p99 through the
                 busy-retry storm must stay under 3x the baseline's —
                 a deliberately loose absolute sanity bound, because
                 tail latency under a 98% shed rate is mostly backoff
                 scheduling, which jitters with runner load.

Latency-style fields are printed for context but only throughput gates.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--tolerance 0.25]
"""

import argparse
import json
import sys


def roap_throughput(doc: dict) -> tuple[float, str, str]:
    value = float(doc["multi_agent"]["exchanges_per_s"])
    label = f"fleet throughput ({doc['multi_agent']['agents']} agents)"
    return value, label, "exch/s"


def dcf_throughput(doc: dict, payload_bytes: int) -> tuple[float, str, str]:
    entry = next(s for s in doc["sizes"]
                 if s["payload_bytes"] == payload_bytes)
    label = f"stream decrypt ({payload_bytes // 1024} KiB payload)"
    return float(entry["stream_decrypt_mbps"]), label, "MB/s"


def store_throughput(doc: dict) -> tuple[float, str, str]:
    value = 1e6 / float(doc["file_buffered"]["commit_us_p50"])
    return value, "buffered store commit rate (1/p50)", "commits/s"


def net_throughput(doc: dict, agents: int) -> tuple[float, str, str]:
    entry = next(s for s in doc["scales"] if s["agents"] == agents)
    label = f"fleet throughput over TCP ({agents} agents)"
    return float(entry["exchanges_per_s"]), label, "exch/s"


def net_worker_throughput(doc: dict, workers: int) -> float:
    entry = next(p for p in doc["exchanges_per_s_vs_workers"]
                 if p["workers"] == workers)
    return float(entry["exchanges_per_s"])


def check_net_worker_sweep(baseline: dict, current: dict,
                           tolerance: float) -> bool:
    """Secondary net_fleet gate: exchanges/s at the largest worker count
    measured in BOTH documents' exchanges_per_s_vs_workers sweeps.
    Returns False on a regression beyond tolerance. Documents predating
    the sweep (or with disjoint worker counts) skip the gate."""
    base_sweep = baseline.get("exchanges_per_s_vs_workers")
    cur_sweep = current.get("exchanges_per_s_vs_workers")
    if not base_sweep or not cur_sweep:
        return True
    shared = (set(p["workers"] for p in base_sweep) &
              set(p["workers"] for p in cur_sweep))
    if not shared:
        return True
    workers = max(shared)
    base = net_worker_throughput(baseline, workers)
    cur = net_worker_throughput(current, workers)
    floor = base * (1.0 - tolerance)
    print(f"baseline worker-sweep throughput ({workers} workers): "
          f"{base:10.1f} exch/s")
    print(f"current  worker-sweep throughput ({workers} workers): "
          f"{cur:10.1f} exch/s")
    print(f"floor (-{tolerance:.0%}): {floor:10.1f} exch/s")
    if cur < floor:
        print(f"FAIL: {workers}-worker throughput regressed more than "
              f"{tolerance:.0%} vs the checked-in baseline",
              file=sys.stderr)
        return False
    return True


def check_net_overload(baseline: dict, current: dict) -> bool:
    """Gate the net_fleet overload section. Correctness first: the
    throttled server must have shed (admission control engaged) and no
    session may have failed outright (sheds stayed retriable). Then, when
    the baseline also carries an overload section, the busy-storm
    acquisition p99 gets a loose 3x absolute headroom bound. Documents
    without the section (pre-overload baselines) skip cleanly."""
    ov = current.get("overload")
    if ov is None:
        return True
    ok = True
    sheds = int(ov.get("sheds", 0))
    failed = int(ov.get("sessions_failed", 0))
    print(f"overload: {ov.get('agents')} agents vs "
          f"{ov.get('server_workers')} worker(s), queue depth "
          f"{ov.get('max_queue_depth')}: {sheds} sheds "
          f"(rate {float(ov.get('shed_rate', 0)):.1%}), "
          f"{failed} failed sessions, "
          f"p50 {ov.get('acquisition_ms_p50')} ms, "
          f"p99 {ov.get('acquisition_ms_p99')} ms")
    if failed != 0:
        print(f"FAIL: overload: {failed} session(s) failed outright — "
              f"busy sheds must stay retriable", file=sys.stderr)
        ok = False
    if sheds == 0:
        print("FAIL: overload: throttled server never shed — admission "
              "control did not engage", file=sys.stderr)
        ok = False
    base_ov = baseline.get("overload")
    base_p99 = (base_ov or {}).get("acquisition_ms_p99")
    cur_p99 = ov.get("acquisition_ms_p99")
    if base_p99 and cur_p99:
        bound = float(base_p99) * 3.0
        print(f"overload p99 bound (3x baseline): {bound:.1f} ms")
        if float(cur_p99) > bound:
            print(f"FAIL: overload acquisition p99 {cur_p99} ms exceeds "
                  f"3x the baseline's {base_p99} ms", file=sys.stderr)
            ok = False
    return ok


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional regression (default 0.25)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    kind = current.get("bench", "roap_session")
    if baseline.get("bench", "roap_session") != kind:
        print(f"FAIL: baseline is {baseline.get('bench')!r} but current is "
              f"{kind!r}", file=sys.stderr)
        return 1

    if kind == "dcf_stream":
        shared = (set(s["payload_bytes"] for s in baseline["sizes"]) &
                  set(s["payload_bytes"] for s in current["sizes"]))
        if not shared:
            print("FAIL: no payload size measured in both documents",
                  file=sys.stderr)
            return 1
        base, base_label, unit = dcf_throughput(baseline, max(shared))
        cur, cur_label, _ = dcf_throughput(current, max(shared))
    elif kind == "state_store":
        base, base_label, unit = store_throughput(baseline)
        cur, cur_label, _ = store_throughput(current)
    elif kind == "net_fleet":
        if not current.get("server_clean_exit", False):
            print("FAIL: server did not drain cleanly on SIGTERM",
                  file=sys.stderr)
            return 1
        errors = sum(int(s.get("transport_errors", 0)) +
                     int(s.get("server_refusals", 0))
                     for s in (current["scales"] +
                               current.get("exchanges_per_s_vs_workers", [])))
        if errors:
            print(f"FAIL: {errors} transport errors / server refusals on a "
                  f"quiet loopback", file=sys.stderr)
            return 1
        shared = (set(s["agents"] for s in baseline["scales"]) &
                  set(s["agents"] for s in current["scales"]))
        if not shared:
            print("FAIL: no agent count measured in both documents",
                  file=sys.stderr)
            return 1
        base, base_label, unit = net_throughput(baseline, max(shared))
        cur, cur_label, _ = net_throughput(current, max(shared))
    else:
        base, base_label, unit = roap_throughput(baseline)
        cur, cur_label, _ = roap_throughput(current)

    floor = base * (1.0 - args.tolerance)
    print(f"baseline {base_label}: {base:10.1f} {unit}")
    print(f"current  {cur_label}: {cur:10.1f} {unit}")
    print(f"floor (-{args.tolerance:.0%}): {floor:10.1f} {unit}")

    if kind == "dcf_stream":
        largest = max(current["sizes"], key=lambda s: s["payload_bytes"])
        print(f"current open latency: {largest.get('open_us')} us, "
              f"{largest.get('open_allocs')} allocs/open, "
              f"{largest.get('read_allocs_per_drain')} allocs/drain, "
              f"{largest.get('speedup_stream_vs_legacy')}x vs legacy "
              f"one-shot")
    elif kind == "state_store":
        durable = current.get("file_durable", {})
        agent = current.get("agent", {})
        print(f"current durable (fsync) commits: "
              f"{durable.get('commits_per_s')} commits/s "
              f"(p50 {durable.get('commit_us_p50')} us); "
              f"crash-safe burn overhead {agent.get('overhead_us')} "
              f"us/grant")
    elif kind == "net_fleet":
        peak = max(current["scales"], key=lambda s: s["agents"])
        print(f"current peak scale ({peak['agents']} agents): "
              f"p50 {peak.get('acquisition_ms_p50')} ms, "
              f"p95 {peak.get('acquisition_ms_p95')} ms, "
              f"p99 {peak.get('acquisition_ms_p99')} ms, "
              f"{peak.get('reconnects')} reconnects")
    else:
        cached = current.get("ro_acquisition", {}).get("cached", {})
        if cached:
            print(f"current cached acquisition: {cached.get('full_ms_avg')} "
                  f"ms (p50 {cached.get('full_ms_p50')}, "
                  f"p95 {cached.get('full_ms_p95')}), "
                  f"{cached.get('allocs_per_exchange')} allocs/exchange")

    if cur < floor:
        print(f"FAIL: throughput regressed more than "
              f"{args.tolerance:.0%} vs the checked-in baseline",
              file=sys.stderr)
        return 1
    if kind == "net_fleet" and not check_net_worker_sweep(
            baseline, current, args.tolerance):
        return 1
    if kind == "net_fleet" and not check_net_overload(baseline, current):
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
