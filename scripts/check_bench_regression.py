#!/usr/bin/env python3
"""Gate on ROAP session benchmark throughput.

Compares the fleet exchanges/s of a fresh bench run against the
checked-in baseline JSON and fails when throughput regressed by more
than the tolerance (default 25%). Latency-style fields are reported for
context but only throughput gates, since it is the least noisy of the
bench's outputs on shared CI runners.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--tolerance 0.25]
"""

import argparse
import json
import sys


def fleet_throughput(doc: dict) -> float:
    return float(doc["multi_agent"]["exchanges_per_s"])


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional regression (default 0.25)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    base = fleet_throughput(baseline)
    cur = fleet_throughput(current)
    floor = base * (1.0 - args.tolerance)

    print(f"baseline fleet throughput: {base:10.1f} exch/s "
          f"({baseline['multi_agent']['agents']} agents)")
    print(f"current  fleet throughput: {cur:10.1f} exch/s "
          f"({current['multi_agent']['agents']} agents)")
    print(f"floor (-{args.tolerance:.0%}):          {floor:10.1f} exch/s")

    cached = current.get("ro_acquisition", {}).get("cached", {})
    if cached:
        print(f"current cached acquisition: {cached.get('full_ms_avg')} ms "
              f"(p50 {cached.get('full_ms_p50')}, "
              f"p95 {cached.get('full_ms_p95')}), "
              f"{cached.get('allocs_per_exchange')} allocs/exchange")

    if cur < floor:
        print(f"FAIL: throughput regressed more than "
              f"{args.tolerance:.0%} vs the checked-in baseline",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
